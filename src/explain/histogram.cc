#include "explain/histogram.h"

#include <sstream>

#include "common/strings.h"
#include "relation/bucketize.h"

namespace fairtopk {

Result<DistributionComparison> CompareDistributions(
    const Table& table, const std::string& attribute,
    const std::vector<uint32_t>& top_k_rows,
    const std::vector<uint32_t>& group_rows, int numeric_bins) {
  auto idx = table.schema().IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::NotFound("attribute '" + attribute + "' not in schema");
  }
  if (top_k_rows.empty() || group_rows.empty()) {
    return Status::InvalidArgument("both populations must be non-empty");
  }
  const auto& attr = table.schema().attribute(*idx);

  DistributionComparison out;
  out.attribute = attribute;

  if (attr.type == AttributeType::kCategorical) {
    out.bins.resize(attr.domain_size());
    for (size_t v = 0; v < attr.domain_size(); ++v) {
      out.bins[v].label = attr.labels[v];
    }
    for (uint32_t r : top_k_rows) {
      out.bins[static_cast<size_t>(table.CodeAt(r, *idx))].top_k_fraction +=
          1.0;
    }
    for (uint32_t r : group_rows) {
      out.bins[static_cast<size_t>(table.CodeAt(r, *idx))].group_fraction +=
          1.0;
    }
  } else {
    FAIRTOPK_ASSIGN_OR_RETURN(
        std::vector<double> boundaries,
        BucketBoundaries(table.column(*idx).values(), numeric_bins,
                         BucketStrategy::kEqualWidth));
    out.bins.resize(boundaries.size() + 1);
    for (size_t b = 0; b < out.bins.size(); ++b) {
      std::string lo =
          b == 0 ? "min" : FormatDouble(boundaries[b - 1], 1);
      std::string hi =
          b == out.bins.size() - 1 ? "max" : FormatDouble(boundaries[b], 1);
      out.bins[b].label = "[" + lo + ", " + hi + ")";
    }
    for (uint32_t r : top_k_rows) {
      out.bins[static_cast<size_t>(
                   BucketOf(table.ValueAt(r, *idx), boundaries))]
          .top_k_fraction += 1.0;
    }
    for (uint32_t r : group_rows) {
      out.bins[static_cast<size_t>(
                   BucketOf(table.ValueAt(r, *idx), boundaries))]
          .group_fraction += 1.0;
    }
  }

  for (DistributionBin& bin : out.bins) {
    bin.top_k_fraction /= static_cast<double>(top_k_rows.size());
    bin.group_fraction /= static_cast<double>(group_rows.size());
  }
  return out;
}

std::string RenderDistribution(const DistributionComparison& comparison) {
  std::ostringstream out;
  out << "Value distribution of '" << comparison.attribute
      << "' (top-k vs detected group)\n";
  for (const DistributionBin& bin : comparison.bins) {
    out << "  " << bin.label << "  top-k="
        << FormatDouble(bin.top_k_fraction, 3)
        << "  group=" << FormatDouble(bin.group_fraction, 3) << "\n";
  }
  return out.str();
}

}  // namespace fairtopk
