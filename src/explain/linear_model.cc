#include "explain/linear_model.h"

#include "explain/linalg.h"

namespace fairtopk {

Result<RidgeRegression> RidgeRegression::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    double lambda) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("ridge fit needs matching x and y");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  const size_t n = x.size();
  const size_t d = x[0].size();
  for (const auto& row : x) {
    if (row.size() != d) {
      return Status::InvalidArgument("feature rows have differing widths");
    }
  }

  // Center targets and features so the intercept absorbs the means and
  // the penalty applies only to the slope weights.
  std::vector<double> feature_mean(d, 0.0);
  double y_mean = 0.0;
  for (size_t r = 0; r < n; ++r) {
    y_mean += y[r];
    for (size_t c = 0; c < d; ++c) feature_mean[c] += x[r][c];
  }
  y_mean /= static_cast<double>(n);
  for (double& m : feature_mean) m /= static_cast<double>(n);

  Matrix centered(n, d);
  std::vector<double> centered_y(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      centered.at(r, c) = x[r][c] - feature_mean[c];
    }
    centered_y[r] = y[r] - y_mean;
  }

  Matrix gram = centered.TransposeTimesSelf();
  // A strictly positive floor keeps the system SPD even when the
  // caller passes lambda = 0 with collinear one-hot blocks.
  gram.AddToDiagonal(lambda > 0.0 ? lambda : 1e-8);
  std::vector<double> rhs = centered.TransposeTimesVector(centered_y);
  FAIRTOPK_ASSIGN_OR_RETURN(std::vector<double> weights,
                            CholeskySolve(gram, rhs));

  double intercept = y_mean;
  for (size_t c = 0; c < d; ++c) intercept -= weights[c] * feature_mean[c];
  return RidgeRegression(std::move(weights), intercept);
}

double RidgeRegression::Predict(const std::vector<double>& features) const {
  double out = intercept_;
  for (size_t c = 0; c < weights_.size() && c < features.size(); ++c) {
    out += weights_[c] * features[c];
  }
  return out;
}

}  // namespace fairtopk
