#include "explain/group_explainer.h"

#include <algorithm>
#include <cmath>

#include "ranking/ranker.h"

namespace fairtopk {

Result<GroupExplainer> GroupExplainer::Create(
    const Table& table, const std::vector<uint32_t>& ranking,
    const ExplainerOptions& options) {
  FAIRTOPK_RETURN_IF_ERROR(ValidateRanking(ranking, table.num_rows()));
  GroupExplainer explainer(table, ranking, options);
  FAIRTOPK_ASSIGN_OR_RETURN(
      explainer.space_,
      FeatureSpace::Create(table.schema(), options.exclude_attributes));
  explainer.features_ = explainer.space_.EncodeAll(table);

  // Targets: the 1-based rank of each row (the D_R of Section V).
  std::vector<uint32_t> inverse = InvertRanking(ranking);
  std::vector<double> y(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    y[r] = static_cast<double>(inverse[r] + 1);
  }

  if (options.model == RankModelKind::kRidge) {
    FAIRTOPK_ASSIGN_OR_RETURN(
        RidgeRegression model,
        RidgeRegression::Fit(explainer.features_, y, options.ridge_lambda));
    explainer.ridge_ = std::make_unique<RidgeRegression>(std::move(model));
  } else if (options.model == RankModelKind::kTree) {
    FAIRTOPK_ASSIGN_OR_RETURN(
        RegressionTree model,
        RegressionTree::Fit(explainer.features_, y, options.tree));
    explainer.tree_ = std::make_unique<RegressionTree>(std::move(model));
  } else {
    FAIRTOPK_ASSIGN_OR_RETURN(
        GradientBoostedTrees model,
        GradientBoostedTrees::Fit(explainer.features_, y,
                                  options.boosting));
    explainer.boosted_ =
        std::make_unique<GradientBoostedTrees>(std::move(model));
  }

  // Training R^2 as a fit diagnostic.
  const RegressionModel& model = explainer.Model();
  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t r = 0; r < y.size(); ++r) {
    const double pred = model.Predict(explainer.features_[r]);
    ss_res += (y[r] - pred) * (y[r] - pred);
    ss_tot += (y[r] - y_mean) * (y[r] - y_mean);
  }
  explainer.training_r2_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;

  // Deterministic background sample for Shapley baselines.
  Rng rng(options.seed);
  if (table.num_rows() <= options.background_sample) {
    explainer.background_ = explainer.features_;
  } else {
    std::vector<uint32_t> rows(table.num_rows());
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<uint32_t>(i);
    }
    rng.Shuffle(rows);
    rows.resize(options.background_sample);
    for (uint32_t r : rows) {
      explainer.background_.push_back(explainer.features_[r]);
    }
  }
  return explainer;
}

const RegressionModel& GroupExplainer::Model() const {
  if (ridge_ != nullptr) return *ridge_;
  if (tree_ != nullptr) return *tree_;
  return *boosted_;
}

double GroupExplainer::PredictRank(size_t row) const {
  return Model().Predict(features_[row]);
}

Result<GroupExplanation> GroupExplainer::Explain(const Pattern& pattern,
                                                 const PatternSpace& space,
                                                 int k) const {
  if (k < 1 || static_cast<size_t>(k) > table_->num_rows()) {
    return Status::InvalidArgument("k outside [1, |D|]");
  }
  if (pattern.num_attributes() != space.num_attributes()) {
    return Status::InvalidArgument("pattern does not match pattern space");
  }

  // Rows of the detected group.
  std::vector<uint32_t> group_rows;
  for (size_t r = 0; r < table_->num_rows(); ++r) {
    bool satisfies = true;
    for (size_t a = 0; a < pattern.num_attributes() && satisfies; ++a) {
      if (pattern.IsSpecified(a) &&
          table_->CodeAt(r, space.table_index(a)) != pattern.value(a)) {
        satisfies = false;
      }
    }
    if (satisfies) group_rows.push_back(static_cast<uint32_t>(r));
  }
  if (group_rows.empty()) {
    return Status::InvalidArgument("pattern matches no tuples");
  }

  // Per-tuple Shapley values, averaged per attribute over the group
  // (the s_i aggregation of Section V).
  std::vector<double> aggregated(space_.num_groups(), 0.0);
  Rng rng(options_.seed ^ 0xda3e39cb94b95bdbULL);
  for (uint32_t row : group_rows) {
    Result<std::vector<double>> shapley =
        ridge_ != nullptr
            ? ExactLinearShapley(*ridge_, space_, features_[row],
                                 background_)
            : SamplingShapley(Model(), space_, features_[row], background_,
                              options_.sampling, rng);
    if (!shapley.ok()) return shapley.status();
    for (size_t g = 0; g < aggregated.size(); ++g) {
      aggregated[g] += (*shapley)[g];
    }
  }
  for (double& v : aggregated) {
    v /= static_cast<double>(group_rows.size());
  }

  GroupExplanation out;
  out.pattern = pattern;
  for (size_t g = 0; g < space_.num_groups(); ++g) {
    out.effects.push_back({space_.group_name(g), aggregated[g]});
  }
  std::stable_sort(out.effects.begin(), out.effects.end(),
                   [](const AttributeEffect& a, const AttributeEffect& b) {
                     return std::fabs(a.mean_shapley) >
                            std::fabs(b.mean_shapley);
                   });

  std::vector<uint32_t> top_k_rows(ranking_.begin(),
                                   ranking_.begin() + k);
  FAIRTOPK_ASSIGN_OR_RETURN(
      out.top_attribute_distribution,
      CompareDistributions(*table_, out.effects.front().attribute,
                           top_k_rows, group_rows));
  return out;
}

}  // namespace fairtopk
