// Minimal dense linear algebra for the rank-regression models: just
// enough to solve ridge normal equations via Cholesky factorization.
#ifndef FAIRTOPK_EXPLAIN_LINALG_H_
#define FAIRTOPK_EXPLAIN_LINALG_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace fairtopk {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// this^T * this (Gram matrix), cols x cols.
  Matrix TransposeTimesSelf() const;

  /// this^T * v for a vector of rows() entries.
  std::vector<double> TransposeTimesVector(const std::vector<double>& v) const;

  /// Adds `value` to every diagonal entry (requires square).
  void AddToDiagonal(double value);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Fails when A is not SPD (up to numerical tolerance).
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

}  // namespace fairtopk

#endif  // FAIRTOPK_EXPLAIN_LINALG_H_
