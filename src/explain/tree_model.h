// CART regression tree: a non-linear alternative M_R, so the Shapley
// pipeline can be exercised against a model the exact-linear path
// cannot explain (sampling Shapley is required).
#ifndef FAIRTOPK_EXPLAIN_TREE_MODEL_H_
#define FAIRTOPK_EXPLAIN_TREE_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "explain/linear_model.h"

namespace fairtopk {

/// Hyperparameters for RegressionTree::Fit.
struct TreeOptions {
  int max_depth = 8;
  int min_samples_leaf = 5;
  /// Minimum variance-reduction gain to accept a split.
  double min_gain = 1e-9;
};

/// Binary regression tree grown by greedy variance reduction with
/// axis-aligned threshold splits (left: feature < threshold).
class RegressionTree : public RegressionModel {
 public:
  static Result<RegressionTree> Fit(const std::vector<std::vector<double>>& x,
                                    const std::vector<double>& y,
                                    const TreeOptions& options);

  double Predict(const std::vector<double>& features) const override;

  /// Number of nodes in the fitted tree (diagnostics/tests).
  size_t num_nodes() const { return nodes_.size(); }

  /// Depth of the fitted tree.
  int depth() const;

 private:
  struct Node {
    // Leaves have feature == -1 and carry `value`.
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;
    int32_t left = -1;
    int32_t right = -1;
  };

  RegressionTree() = default;

  int32_t Grow(const std::vector<std::vector<double>>& x,
               const std::vector<double>& y, std::vector<uint32_t>& rows,
               size_t begin, size_t end, int depth,
               const TreeOptions& options);

  std::vector<Node> nodes_;
};

}  // namespace fairtopk

#endif  // FAIRTOPK_EXPLAIN_TREE_MODEL_H_
