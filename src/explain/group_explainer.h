// End-to-end result analysis of Section V: train a regression model
// M_R that simulates the black-box ranker on D_R = {(t, rank(t))},
// compute per-tuple Shapley values for every tuple in a detected
// group, aggregate them into one attribute-level vector for the group,
// and compare value distributions of the top-Shapley attribute between
// the top-k and the group.
#ifndef FAIRTOPK_EXPLAIN_GROUP_EXPLAINER_H_
#define FAIRTOPK_EXPLAIN_GROUP_EXPLAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "explain/feature_space.h"
#include "explain/histogram.h"
#include "explain/linear_model.h"
#include "explain/shapley.h"
#include "explain/boosted_model.h"
#include "explain/tree_model.h"
#include "pattern/pattern.h"
#include "relation/table.h"

namespace fairtopk {

/// Which regression family simulates the ranker.
enum class RankModelKind {
  kRidge,    ///< linear; enables the exact Shapley path
  kTree,     ///< CART; always uses sampling Shapley
  kBoosted,  ///< gradient-boosted trees; sampling Shapley
};

/// Configuration for GroupExplainer.
struct ExplainerOptions {
  RankModelKind model = RankModelKind::kRidge;
  double ridge_lambda = 1.0;
  TreeOptions tree;
  BoostingOptions boosting;
  SamplingShapleyOptions sampling;
  /// Attributes excluded from the model features (e.g. an opaque score
  /// column that would trivially explain the ranking).
  std::vector<std::string> exclude_attributes;
  /// Sampling seed (attributions are deterministic given the seed).
  uint64_t seed = 7;
  /// Size of the background sample used for Shapley baselines; the
  /// whole dataset is used when it is smaller than this.
  size_t background_sample = 256;
};

/// One attribute's aggregated contribution to the group's ranking.
struct AttributeEffect {
  std::string attribute;
  /// Mean Shapley value over the group's tuples; the paper plots its
  /// magnitude (Figure 10a-c).
  double mean_shapley = 0.0;
};

/// Full explanation for one detected group.
struct GroupExplanation {
  Pattern pattern;
  /// All attributes, sorted by |mean_shapley| descending.
  std::vector<AttributeEffect> effects;
  /// Distribution comparison for the top-ranked attribute.
  DistributionComparison top_attribute_distribution;
};

/// Trains M_R once and explains any number of detected groups.
class GroupExplainer {
 public:
  /// Trains the rank-regression model on `table` and `ranking`
  /// (position i of `ranking` is the row at rank i+1).
  static Result<GroupExplainer> Create(const Table& table,
                                       const std::vector<uint32_t>& ranking,
                                       const ExplainerOptions& options);

  /// Explains the group described by `pattern` over `space`, detected
  /// at top-`k`. Aggregates Shapley values over the group's tuples and
  /// compares distributions against the top-k tuples.
  Result<GroupExplanation> Explain(const Pattern& pattern,
                                   const PatternSpace& space, int k) const;

  /// Simulated rank for a table row (diagnostics/tests).
  double PredictRank(size_t row) const;

  /// The fitted rank-regression model.
  const RegressionModel& Model() const;

  /// Model goodness-of-fit on the training data (R^2).
  double TrainingR2() const { return training_r2_; }

 private:
  GroupExplainer(const Table& table, std::vector<uint32_t> ranking,
                 ExplainerOptions options)
      : table_(&table), ranking_(std::move(ranking)),
        options_(std::move(options)) {}

  const Table* table_;
  std::vector<uint32_t> ranking_;
  ExplainerOptions options_;
  FeatureSpace space_;
  std::vector<std::vector<double>> features_;
  std::vector<std::vector<double>> background_;
  std::unique_ptr<RidgeRegression> ridge_;
  std::unique_ptr<RegressionTree> tree_;
  std::unique_ptr<GradientBoostedTrees> boosted_;
  double training_r2_ = 0.0;
};

}  // namespace fairtopk

#endif  // FAIRTOPK_EXPLAIN_GROUP_EXPLAINER_H_
