#include "explain/tree_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace fairtopk {

namespace {

double MeanOf(const std::vector<double>& y, const std::vector<uint32_t>& rows,
              size_t begin, size_t end) {
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += y[rows[i]];
  return sum / static_cast<double>(end - begin);
}

}  // namespace

Result<RegressionTree> RegressionTree::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    const TreeOptions& options) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("tree fit needs matching x and y");
  }
  if (options.max_depth < 1 || options.min_samples_leaf < 1) {
    return Status::InvalidArgument("invalid tree options");
  }
  const size_t d = x[0].size();
  for (const auto& row : x) {
    if (row.size() != d) {
      return Status::InvalidArgument("feature rows have differing widths");
    }
  }
  RegressionTree tree;
  std::vector<uint32_t> rows(x.size());
  std::iota(rows.begin(), rows.end(), 0);
  tree.Grow(x, y, rows, 0, rows.size(), 0, options);
  return tree;
}

int32_t RegressionTree::Grow(const std::vector<std::vector<double>>& x,
                             const std::vector<double>& y,
                             std::vector<uint32_t>& rows, size_t begin,
                             size_t end, int depth,
                             const TreeOptions& options) {
  const size_t count = end - begin;
  const double mean = MeanOf(y, rows, begin, end);

  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_id)].value = mean;

  if (depth >= options.max_depth ||
      count < 2 * static_cast<size_t>(options.min_samples_leaf)) {
    return node_id;
  }

  // Parent sum of squared deviations.
  double parent_sse = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double dlt = y[rows[i]] - mean;
    parent_sse += dlt * dlt;
  }
  if (parent_sse <= options.min_gain) return node_id;

  const size_t num_features = x[0].size();
  double best_gain = options.min_gain;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<uint32_t> sorted(rows.begin() + static_cast<long>(begin),
                               rows.begin() + static_cast<long>(end));
  for (size_t f = 0; f < num_features; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&x, f](uint32_t a, uint32_t b) {
      return x[a][f] < x[b][f];
    });
    // Prefix sums over the sorted order let every split position be
    // evaluated in O(1).
    double left_sum = 0.0;
    double left_sq = 0.0;
    double total_sum = 0.0;
    double total_sq = 0.0;
    for (size_t i = 0; i < count; ++i) {
      const double v = y[sorted[i]];
      total_sum += v;
      total_sq += v * v;
    }
    for (size_t i = 0; i + 1 < count; ++i) {
      const double v = y[sorted[i]];
      left_sum += v;
      left_sq += v * v;
      const double left_x = x[sorted[i]][f];
      const double right_x = x[sorted[i + 1]][f];
      if (left_x == right_x) continue;  // not a valid cut point
      const size_t left_n = i + 1;
      const size_t right_n = count - left_n;
      if (left_n < static_cast<size_t>(options.min_samples_leaf) ||
          right_n < static_cast<size_t>(options.min_samples_leaf)) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = parent_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (left_x + right_x) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition rows in place on the chosen split.
  auto middle = std::partition(
      rows.begin() + static_cast<long>(begin),
      rows.begin() + static_cast<long>(end),
      [&x, best_feature, best_threshold](uint32_t r) {
        return x[r][static_cast<size_t>(best_feature)] < best_threshold;
      });
  const size_t split =
      static_cast<size_t>(middle - rows.begin());
  if (split == begin || split == end) return node_id;  // degenerate

  const int32_t left =
      Grow(x, y, rows, begin, split, depth + 1, options);
  const int32_t right = Grow(x, y, rows, split, end, depth + 1, options);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double RegressionTree::Predict(const std::vector<double>& features) const {
  if (nodes_.empty()) return 0.0;
  size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const size_t f = static_cast<size_t>(nodes_[node].feature);
    const double v = f < features.size() ? features[f] : 0.0;
    node = static_cast<size_t>(v < nodes_[node].threshold
                                   ? nodes_[node].left
                                   : nodes_[node].right);
  }
  return nodes_[node].value;
}

int RegressionTree::depth() const {
  // Iterative depth computation over the node array.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<size_t, int>> stack = {{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    if (nodes_[node].feature >= 0) {
      stack.push_back({static_cast<size_t>(nodes_[node].left), depth + 1});
      stack.push_back({static_cast<size_t>(nodes_[node].right), depth + 1});
    }
  }
  return max_depth;
}

}  // namespace fairtopk
