#include "explain/shapley.h"

#include <numeric>

namespace fairtopk {

Result<std::vector<double>> ExactLinearShapley(
    const RidgeRegression& model, const FeatureSpace& space,
    const std::vector<double>& x,
    const std::vector<std::vector<double>>& background) {
  if (x.size() != space.num_features()) {
    return Status::InvalidArgument("x does not match the feature space");
  }
  if (background.empty()) {
    return Status::InvalidArgument("background set is empty");
  }
  std::vector<double> mean(space.num_features(), 0.0);
  for (const auto& row : background) {
    if (row.size() != space.num_features()) {
      return Status::InvalidArgument("background row width mismatch");
    }
    for (size_t f = 0; f < row.size(); ++f) mean[f] += row[f];
  }
  for (double& m : mean) m /= static_cast<double>(background.size());

  std::vector<double> out(space.num_groups(), 0.0);
  const std::vector<double>& w = model.weights();
  for (size_t g = 0; g < space.num_groups(); ++g) {
    auto [first, last] = space.group_range(g);
    double phi = 0.0;
    for (size_t f = first; f < last; ++f) {
      phi += w[f] * (x[f] - mean[f]);
    }
    out[g] = phi;
  }
  return out;
}

Result<std::vector<double>> SamplingShapley(
    const RegressionModel& model, const FeatureSpace& space,
    const std::vector<double>& x,
    const std::vector<std::vector<double>>& background,
    const SamplingShapleyOptions& options, Rng& rng) {
  if (x.size() != space.num_features()) {
    return Status::InvalidArgument("x does not match the feature space");
  }
  if (background.empty()) {
    return Status::InvalidArgument("background set is empty");
  }
  if (options.num_permutations < 1) {
    return Status::InvalidArgument("need at least one permutation");
  }
  const size_t num_groups = space.num_groups();
  std::vector<double> totals(num_groups, 0.0);
  std::vector<size_t> order(num_groups);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> z;

  for (int it = 0; it < options.num_permutations; ++it) {
    const auto& base =
        background[rng.UniformUint64(background.size())];
    if (base.size() != space.num_features()) {
      return Status::InvalidArgument("background row width mismatch");
    }
    rng.Shuffle(order);
    z = base;
    double previous = model.Predict(z);
    for (size_t g : order) {
      auto [first, last] = space.group_range(g);
      for (size_t f = first; f < last; ++f) z[f] = x[f];
      const double current = model.Predict(z);
      totals[g] += current - previous;
      previous = current;
    }
  }
  for (double& t : totals) t /= static_cast<double>(options.num_permutations);
  return totals;
}

}  // namespace fairtopk
