#include "explain/boosted_model.h"

namespace fairtopk {

Result<GradientBoostedTrees> GradientBoostedTrees::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    const BoostingOptions& options) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("boosting fit needs matching x and y");
  }
  if (options.num_trees < 1 || options.learning_rate <= 0.0 ||
      options.learning_rate > 1.0) {
    return Status::InvalidArgument("invalid boosting options");
  }

  GradientBoostedTrees model;
  model.learning_rate_ = options.learning_rate;
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  model.base_prediction_ = mean;

  std::vector<double> prediction(y.size(), mean);
  std::vector<double> residual(y.size());
  for (int t = 0; t < options.num_trees; ++t) {
    double sse = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      residual[i] = y[i] - prediction[i];
      sse += residual[i] * residual[i];
    }
    if (sse / static_cast<double>(y.size()) < 1e-12) break;
    FAIRTOPK_ASSIGN_OR_RETURN(RegressionTree tree,
                              RegressionTree::Fit(x, residual,
                                                  options.tree));
    if (tree.num_nodes() <= 1 && t > 0) {
      // The residuals admit no further split: stop early.
      break;
    }
    for (size_t i = 0; i < y.size(); ++i) {
      prediction[i] += options.learning_rate * tree.Predict(x[i]);
    }
    model.trees_.push_back(std::move(tree));
  }

  double sse = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double d = y[i] - prediction[i];
    sse += d * d;
  }
  model.training_mse_ = sse / static_cast<double>(y.size());
  return model;
}

double GradientBoostedTrees::Predict(
    const std::vector<double>& features) const {
  double out = base_prediction_;
  for (const RegressionTree& tree : trees_) {
    out += learning_rate_ * tree.Predict(features);
  }
  return out;
}

}  // namespace fairtopk
