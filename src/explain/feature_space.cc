#include "explain/feature_space.h"

#include <algorithm>

namespace fairtopk {

Result<FeatureSpace> FeatureSpace::Create(
    const Schema& schema, const std::vector<std::string>& exclude) {
  FeatureSpace space;
  for (size_t c = 0; c < schema.size(); ++c) {
    const auto& attr = schema.attribute(c);
    if (std::find(exclude.begin(), exclude.end(), attr.name) !=
        exclude.end()) {
      continue;
    }
    Group group;
    group.name = attr.name;
    group.table_index = c;
    group.categorical = attr.type == AttributeType::kCategorical;
    group.first_feature = space.num_features_;
    space.num_features_ +=
        group.categorical ? attr.domain_size() : size_t{1};
    group.last_feature = space.num_features_;
    space.groups_.push_back(std::move(group));
  }
  if (space.groups_.empty()) {
    return Status::InvalidArgument("feature space excludes every attribute");
  }
  return space;
}

void FeatureSpace::Encode(const Table& table, size_t row,
                          std::vector<double>& out) const {
  out.assign(num_features_, 0.0);
  for (const Group& group : groups_) {
    if (group.categorical) {
      const auto code =
          static_cast<size_t>(table.CodeAt(row, group.table_index));
      out[group.first_feature + code] = 1.0;
    } else {
      out[group.first_feature] = table.ValueAt(row, group.table_index);
    }
  }
}

std::vector<std::vector<double>> FeatureSpace::EncodeAll(
    const Table& table) const {
  std::vector<std::vector<double>> rows(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    Encode(table, r, rows[r]);
  }
  return rows;
}

}  // namespace fairtopk
