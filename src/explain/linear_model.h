// Regression models that simulate the black-box ranker (the M_R of
// Section V): interface plus a ridge-regularized linear model fit by
// normal equations.
#ifndef FAIRTOPK_EXPLAIN_LINEAR_MODEL_H_
#define FAIRTOPK_EXPLAIN_LINEAR_MODEL_H_

#include <vector>

#include "common/status.h"

namespace fairtopk {

/// A fitted regression model mapping feature vectors to a real value
/// (here: a simulated rank).
class RegressionModel {
 public:
  virtual ~RegressionModel() = default;

  /// Predicted value for one feature vector.
  virtual double Predict(const std::vector<double>& features) const = 0;
};

/// Linear model y = w . x + b, fit with an L2 penalty on w.
class RidgeRegression : public RegressionModel {
 public:
  /// Fits on rows `x` (all the same width) and targets `y`. `lambda`
  /// is the ridge strength; a small positive value also keeps the
  /// normal equations well-posed under one-hot collinearity.
  static Result<RidgeRegression> Fit(const std::vector<std::vector<double>>& x,
                                     const std::vector<double>& y,
                                     double lambda);

  double Predict(const std::vector<double>& features) const override;

  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  RidgeRegression(std::vector<double> weights, double intercept)
      : weights_(std::move(weights)), intercept_(intercept) {}

  std::vector<double> weights_;
  double intercept_;
};

}  // namespace fairtopk

#endif  // FAIRTOPK_EXPLAIN_LINEAR_MODEL_H_
