// Shared input/output types for the detection algorithms.
#ifndef FAIRTOPK_DETECT_DETECTION_RESULT_H_
#define FAIRTOPK_DETECT_DETECTION_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/bitmap_index.h"
#include "pattern/pattern.h"
#include "ranking/ranker.h"
#include "relation/table.h"

namespace fairtopk {

/// Parameters common to all detection problems.
struct DetectionConfig {
  int k_min = 10;
  int k_max = 49;
  /// Minimum group size in D (τs). Groups smaller than this are never
  /// reported (and, by anti-monotonicity, never expanded).
  int size_threshold = 50;
  /// Worker threads for the full top-down searches: 1 (default) runs
  /// sequentially, N > 1 shards the first-predicate subtrees across N
  /// threads, 0 uses the hardware concurrency. Results are identical
  /// for every value (the engine merges shard results in a fixed
  /// subtree order).
  int num_threads = 1;
};

/// Work counters for the search-space experiments of Section VI-B.
struct DetectionStats {
  /// Number of pattern nodes whose representation was evaluated —
  /// the "patterns examined during the search" count the paper compares.
  uint64_t nodes_visited = 0;
  /// Node evaluations served from a materialized parent intersection in
  /// the search engine's PatternCursor: each hit cost one single-bitset
  /// AND instead of |p| full intersections.
  uint64_t cursor_reuse_hits = 0;
  /// Elapsed wall-clock seconds of the algorithm, set once by the
  /// owning entry point. Deliberately NOT accumulated by Merge():
  /// summing per-worker elapsed times would report N overlapping
  /// workers as N× the real latency.
  double seconds = 0.0;
  /// Summed busy time across workers (per-worker elapsed seconds inside
  /// the engine's searches, added up on merge). At most `seconds` for
  /// sequential runs; may exceed it under num_threads > 1, where
  /// cpu_seconds / seconds approximates the effective parallelism.
  double cpu_seconds = 0.0;

  /// Accumulates another worker's counters. Parallel searches give each
  /// worker its own DetectionStats and merge on join; workers never
  /// share a mutable counter. Wall-clock `seconds` is owned by the
  /// merged result and left untouched.
  void Merge(const DetectionStats& other) {
    nodes_visited += other.nodes_visited;
    cursor_reuse_hits += other.cursor_reuse_hits;
    cpu_seconds += other.cpu_seconds;
  }
};

/// Per-k most-general biased patterns plus stats.
class DetectionResult {
 public:
  DetectionResult(int k_min, int k_max)
      : k_min_(k_min), per_k_(static_cast<size_t>(k_max - k_min + 1)) {}

  int k_min() const { return k_min_; }
  int k_max() const { return k_min_ + static_cast<int>(per_k_.size()) - 1; }

  /// Reported patterns for `k` (sorted, deterministic).
  const std::vector<Pattern>& AtK(int k) const {
    return per_k_[static_cast<size_t>(k - k_min_)];
  }

  /// Mutable accessor used by the algorithms.
  std::vector<Pattern>& MutableAtK(int k) {
    return per_k_[static_cast<size_t>(k - k_min_)];
  }

  /// Distinct patterns reported at any k, sorted.
  std::vector<Pattern> AllDistinct() const;

  /// Largest per-k result size.
  size_t MaxResultSize() const;

  DetectionStats& stats() { return stats_; }
  const DetectionStats& stats() const { return stats_; }

 private:
  int k_min_;
  std::vector<std::vector<Pattern>> per_k_;
  DetectionStats stats_;
};

/// Validated bundle of everything the algorithms need: the ranked
/// bitmap index for one (table, ranker, pattern attributes) triple.
/// Building it once lets benchmark comparisons exclude ranking and
/// index-construction cost from all algorithms equally.
class DetectionInput {
 public:
  /// Ranks `table` with `ranker`, builds the pattern space over
  /// `pattern_attributes` (all categorical attributes when empty), and
  /// indexes the result.
  static Result<DetectionInput> Prepare(
      const Table& table, const Ranker& ranker,
      const std::vector<std::string>& pattern_attributes = {});

  /// As above with an explicit precomputed ranking permutation.
  static Result<DetectionInput> PrepareWithRanking(
      const Table& table, std::vector<uint32_t> ranking,
      const std::vector<std::string>& pattern_attributes = {});

  /// Adopts an already-validated index (e.g. reassembled from a
  /// snapshot via BitmapIndex::FromParts) instead of building one. The
  /// input's ranking is taken from the index itself.
  static DetectionInput FromIndex(BitmapIndex index) {
    std::vector<uint32_t> ranking = index.ranking();
    return DetectionInput(std::move(index), std::move(ranking));
  }

  const BitmapIndex& index() const { return index_; }
  const PatternSpace& space() const { return index_.space(); }
  size_t num_rows() const { return index_.num_rows(); }
  const std::vector<uint32_t>& ranking() const { return ranking_; }

  /// Checks k range and threshold against this input.
  Status ValidateConfig(const DetectionConfig& config) const;

  /// How UpdateRanking maintained the index.
  enum class Maintenance {
    kNoop,     ///< new ranking identical to the current one
    kPatched,  ///< suffix patched in place (BitmapIndex::ApplyRanking)
    kRebuilt,  ///< diff window exceeded the threshold; built from scratch
  };

  /// Outcome details of one UpdateRanking call.
  struct MaintenanceOutcome {
    Maintenance kind = Maintenance::kNoop;
    /// Rank positions in the diff window [first-divergence, n).
    size_t window = 0;
    /// Positions actually rewritten (kPatched only).
    size_t patched_positions = 0;
  };

  /// Re-targets this input at `new_ranking` over `table` (the original
  /// table, optionally extended by appended rows — see
  /// BitmapIndex::ApplyRanking for the contract). While the number of
  /// rank positions whose row changed is at most `rebuild_threshold`
  /// (a fraction of the new row count) the index is patched in place;
  /// beyond it, patching would rewrite most positions anyway, so the
  /// index is rebuilt from scratch. On error the input is unchanged.
  Status UpdateRanking(const Table& table, std::vector<uint32_t> new_ranking,
                       double rebuild_threshold,
                       MaintenanceOutcome* outcome = nullptr);

 private:
  DetectionInput(BitmapIndex index, std::vector<uint32_t> ranking)
      : index_(std::move(index)), ranking_(std::move(ranking)) {}

  BitmapIndex index_;
  std::vector<uint32_t> ranking_;
};

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_DETECTION_RESULT_H_
