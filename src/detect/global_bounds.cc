#include "detect/global_bounds.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "detect/topdown.h"

namespace fairtopk {

Status DetectGlobalBoundsStream(const DetectionInput& input,
                                const GlobalBoundSpec& bounds,
                                const DetectionConfig& config,
                                ResultSink& sink) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  if (!bounds.lower.IsNonDecreasing()) {
    return Status::InvalidArgument(
        "GLOBALBOUNDS assumes non-decreasing lower bounds (footnote 3 of "
        "the paper); use DetectGlobalIterTD for arbitrary bounds");
  }
  const BitmapIndex& index = input.index();

  // Res and DRes of Algorithm 2, carried across ks by the per-k
  // closure.
  MostGeneralResultSet res;
  std::vector<Pattern> deferred;

  return engine::StreamPerK(config, sink, [&](int k, DetectionStats& stats)
                                              -> std::vector<Pattern> {
    DetectionStats* sp = &stats;
    const double lower = bounds.lower.At(k);
    const auto flat_bound = [lower](size_t) { return lower; };
    if (k == config.k_min || lower != bounds.lower.At(k - 1)) {
      // Initial iteration, or the bound stepped up: restart with a
      // fresh search (Algorithm 2, line 5).
      TopDownOutcome outcome =
          TopDownSearch(index, config.size_threshold, k, flat_bound, sp,
                        config.num_threads);
      res = std::move(outcome.result);
      deferred = std::move(outcome.deferred);
      return res.Sorted();
    }

    // The resumed searches of this iteration run sequentially (they are
    // interleaved with the serial incremental bookkeeping).
    const engine::SearchParams resume_params{config.size_threshold,
                                             static_cast<size_t>(k), 1};

    // The new tuple occupies rank position k-1 (0-based). With a flat
    // bound, counts only grow, so the only possible transition is
    // biased -> not biased, and only for patterns the tuple satisfies.
    const size_t new_pos = static_cast<size_t>(k - 1);

    // Phase 1: members of Res satisfied by the new tuple. Processed in
    // sorted order so the incremental walk (and its work counters) is
    // identical however the preceding full search was sharded.
    std::vector<Pattern> candidates;
    for (const Pattern& p : res.patterns()) {
      if (index.RankedRowSatisfies(p, new_pos)) candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const Pattern& p : candidates) {
      if (!res.Contains(p)) continue;  // evicted by an earlier expansion
      ++sp->nodes_visited;
      const size_t top_k = index.TopKCount(p, static_cast<size_t>(k));
      if (static_cast<double>(top_k) >= lower) {
        res.Remove(p);
        engine::MostGeneralBelowFrom(index, resume_params, p, flat_bound, res,
                                     deferred, sp);
      }
    }

    // Phase 2: re-examine the deferred set (Algorithm 2, line 8).
    // Entries may leave (count reached the bound), be promoted into Res
    // (their subsuming ancestor left), or stay deferred.
    std::vector<Pattern> pending;
    pending.swap(deferred);
    std::sort(pending.begin(), pending.end());
    for (Pattern& d : pending) {
      ++sp->nodes_visited;
      const size_t top_k = index.TopKCount(d, static_cast<size_t>(k));
      if (static_cast<double>(top_k) >= lower) {
        engine::MostGeneralBelowFrom(index, resume_params, d, flat_bound, res,
                                     deferred, sp);
        continue;
      }
      if (res.HasProperAncestorOf(d)) {
        deferred.push_back(std::move(d));
        continue;
      }
      UpdateOutcome update = res.Update(d);
      for (Pattern& evicted : update.evicted) {
        deferred.push_back(std::move(evicted));
      }
      if (!update.inserted) {
        // A duplicate (already present); drop silently.
      }
    }

    return res.Sorted();
  });
}

Result<DetectionResult> DetectGlobalBounds(const DetectionInput& input,
                                           const GlobalBoundSpec& bounds,
                                           const DetectionConfig& config) {
  return MaterializeStream(input, config, [&](ResultSink& sink) {
    return DetectGlobalBoundsStream(input, bounds, config, sink);
  });
}

}  // namespace fairtopk
