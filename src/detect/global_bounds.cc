#include "detect/global_bounds.h"

#include <algorithm>

#include "common/timer.h"
#include "detect/topdown.h"

namespace fairtopk {

Result<DetectionResult> DetectGlobalBounds(const DetectionInput& input,
                                           const GlobalBoundSpec& bounds,
                                           const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  if (!bounds.lower.IsNonDecreasing()) {
    return Status::InvalidArgument(
        "GLOBALBOUNDS assumes non-decreasing lower bounds (footnote 3 of "
        "the paper); use DetectGlobalIterTD for arbitrary bounds");
  }
  WallTimer timer;
  const BitmapIndex& index = input.index();
  DetectionResult result(config.k_min, config.k_max);
  DetectionStats* stats = &result.stats();

  MostGeneralResultSet res;
  std::vector<Pattern> deferred;  // DRes of Algorithm 2.

  // Initial full search at k_min.
  {
    const double lower = bounds.lower.At(config.k_min);
    TopDownOutcome outcome = TopDownSearch(
        index, config.size_threshold, config.k_min,
        [lower](size_t) { return lower; }, stats, config.num_threads);
    res = std::move(outcome.result);
    deferred = std::move(outcome.deferred);
    result.MutableAtK(config.k_min) = res.Sorted();
  }

  for (int k = config.k_min + 1; k <= config.k_max; ++k) {
    const double lower = bounds.lower.At(k);
    // The resumed searches of this iteration run sequentially (they are
    // interleaved with the serial incremental bookkeeping).
    const engine::SearchParams resume_params{config.size_threshold,
                                             static_cast<size_t>(k), 1};
    const auto flat_bound = [lower](size_t) { return lower; };
    if (lower != bounds.lower.At(k - 1)) {
      // Bound stepped up: restart with a fresh search (Algorithm 2,
      // line 5).
      TopDownOutcome outcome =
          TopDownSearch(index, config.size_threshold, k, flat_bound, stats,
                        config.num_threads);
      res = std::move(outcome.result);
      deferred = std::move(outcome.deferred);
      result.MutableAtK(k) = res.Sorted();
      continue;
    }

    // The new tuple occupies rank position k-1 (0-based). With a flat
    // bound, counts only grow, so the only possible transition is
    // biased -> not biased, and only for patterns the tuple satisfies.
    const size_t new_pos = static_cast<size_t>(k - 1);

    // Phase 1: members of Res satisfied by the new tuple. Processed in
    // sorted order so the incremental walk (and its work counters) is
    // identical however the preceding full search was sharded.
    std::vector<Pattern> candidates;
    for (const Pattern& p : res.patterns()) {
      if (index.RankedRowSatisfies(p, new_pos)) candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const Pattern& p : candidates) {
      if (!res.Contains(p)) continue;  // evicted by an earlier expansion
      if (stats != nullptr) ++stats->nodes_visited;
      const size_t top_k = index.TopKCount(p, static_cast<size_t>(k));
      if (static_cast<double>(top_k) >= lower) {
        res.Remove(p);
        engine::MostGeneralBelowFrom(index, resume_params, p, flat_bound, res,
                                     deferred, stats);
      }
    }

    // Phase 2: re-examine the deferred set (Algorithm 2, line 8).
    // Entries may leave (count reached the bound), be promoted into Res
    // (their subsuming ancestor left), or stay deferred.
    std::vector<Pattern> pending;
    pending.swap(deferred);
    std::sort(pending.begin(), pending.end());
    for (Pattern& d : pending) {
      if (stats != nullptr) ++stats->nodes_visited;
      const size_t top_k = index.TopKCount(d, static_cast<size_t>(k));
      if (static_cast<double>(top_k) >= lower) {
        engine::MostGeneralBelowFrom(index, resume_params, d, flat_bound, res,
                                     deferred, stats);
        continue;
      }
      if (res.HasProperAncestorOf(d)) {
        deferred.push_back(std::move(d));
        continue;
      }
      UpdateOutcome update = res.Update(d);
      for (Pattern& evicted : update.evicted) {
        deferred.push_back(std::move(evicted));
      }
      if (!update.inserted) {
        // A duplicate (already present); drop silently.
      }
    }

    result.MutableAtK(k) = res.Sorted();
  }

  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairtopk
