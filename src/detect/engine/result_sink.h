// Streaming delivery of detection results.
//
// Every detection algorithm finalizes its violation set one k at a
// time (ITERTD and the upper-bound detectors run a search per k, the
// incremental GLOBALBOUNDS/PROPBOUNDS mutate a carried result set
// between ks). A ResultSink receives each finalized batch the moment
// it exists, so a caller can forward, aggregate, or discard per-k
// results without the whole DetectionResult ever being materialized —
// the serving layer streams reports this way, and the legacy
// Result<DetectionResult> entry points are a MaterializingSink away.
//
// Contract (enforced by the engine's StreamPerK driver, which every
// detector emits through):
//   * OnResult(k, patterns) is called exactly once per k, with k
//     strictly ascending over [k_min, k_max]; `patterns` is the final
//     sorted violation set for that k.
//   * OnStats(stats) is called exactly once, after the last OnResult,
//     with the run's work counters (wall clock included).
//   * A non-OK status returned by OnResult aborts the detection; the
//     algorithm returns that status without calling OnStats.
#ifndef FAIRTOPK_DETECT_ENGINE_RESULT_SINK_H_
#define FAIRTOPK_DETECT_ENGINE_RESULT_SINK_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "detect/detection_result.h"
#include "pattern/pattern.h"

namespace fairtopk {

/// Visitor receiving one detection run's per-k violation sets as they
/// are finalized. See the file comment for the call contract.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// One k's final sorted violation set. Returning an error aborts the
  /// run (the detector propagates the status and stops searching).
  virtual Status OnResult(int k, std::vector<Pattern> patterns) = 0;

  /// The run's work counters, delivered once after the last k.
  virtual void OnStats(const DetectionStats& /*stats*/) {}
};

/// Adapter collecting a streamed run into a DetectionResult — the
/// bridge that keeps the Result<DetectionResult> detector signatures
/// intact on top of the streaming core.
class MaterializingSink : public ResultSink {
 public:
  MaterializingSink(int k_min, int k_max) : result_(k_min, k_max) {}

  Status OnResult(int k, std::vector<Pattern> patterns) override {
    result_.MutableAtK(k) = std::move(patterns);
    return Status::OK();
  }

  void OnStats(const DetectionStats& stats) override {
    result_.stats() = stats;
  }

  /// The collected result; valid after the run returned OK.
  DetectionResult TakeResult() && { return std::move(result_); }
  const DetectionResult& result() const { return result_; }

 private:
  DetectionResult result_;
};

/// Forwards every call to two downstream sinks (`first` before
/// `second`). The serving layer uses it to materialize a cache entry
/// while streaming the same run to a client.
class TeeSink : public ResultSink {
 public:
  TeeSink(ResultSink& first, ResultSink& second)
      : first_(first), second_(second) {}

  Status OnResult(int k, std::vector<Pattern> patterns) override {
    FAIRTOPK_RETURN_IF_ERROR(first_.OnResult(k, patterns));
    return second_.OnResult(k, std::move(patterns));
  }

  void OnStats(const DetectionStats& stats) override {
    first_.OnStats(stats);
    second_.OnStats(stats);
  }

 private:
  ResultSink& first_;
  ResultSink& second_;
};

/// Replays a materialized result through `sink` with the same call
/// sequence a live run would produce — how cached detection results
/// serve streaming clients.
Status ReplayResult(const DetectionResult& result, ResultSink& sink);

/// Runs a streaming detector entry point into a MaterializingSink and
/// returns the collected DetectionResult — the shared body of every
/// Detect* materializing wrapper. The config is validated here first:
/// the sink's (k_min, k_max) allocation must not happen on an invalid
/// range (the stream function re-validates, which is cheap and keeps
/// it safe to call directly).
template <typename StreamFn>
Result<DetectionResult> MaterializeStream(const DetectionInput& input,
                                          const DetectionConfig& config,
                                          const StreamFn& stream) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  MaterializingSink sink(config.k_min, config.k_max);
  FAIRTOPK_RETURN_IF_ERROR(stream(static_cast<ResultSink&>(sink)));
  return std::move(sink).TakeResult();
}

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_ENGINE_RESULT_SINK_H_
