#include "detect/engine/result_sink.h"

namespace fairtopk {

Status ReplayResult(const DetectionResult& result, ResultSink& sink) {
  for (int k = result.k_min(); k <= result.k_max(); ++k) {
    FAIRTOPK_RETURN_IF_ERROR(sink.OnResult(k, result.AtK(k)));
  }
  sink.OnStats(result.stats());
  return Status::OK();
}

}  // namespace fairtopk
