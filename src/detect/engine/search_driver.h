// The unified pattern-search engine: one top-down driver over the
// search tree (Definition 4.1) shared by every detection algorithm.
//
// Three ideas collapse the previously duplicated DFS loops into this
// layer:
//
//  1. Cursor-based incremental counting. The driver walks the tree with
//     a PatternCursor that materializes the parent's intersection
//     bitset, so evaluating a child costs one fused AND+popcount pass
//     against a single (attribute, value) bitset — not |p| full
//     intersections per node (see index/pattern_cursor.h).
//
//  2. Inlined policies. Bound evaluation and reporting semantics are
//     template parameters (any callable / visitor struct), so the hot
//     loop has no type-erased std::function dispatch.
//
//  3. Shard-and-merge parallelism with a determinism rule. The root's
//     children (first-predicate branches) own disjoint subtrees; each
//     branch is searched with its OWN visitor instance and cursor, and
//     the per-branch states are merged in fixed branch order after all
//     workers join. Because per-branch work is a pure function of the
//     index and the merge order never depends on thread scheduling, a
//     run with N threads is bit-identical to a sequential run — the
//     sequential path executes the very same branch/merge sequence.
//     Per-worker DetectionStats are merged on join, never shared.
//
// Result delivery is streaming: detectors emit each k's finalized
// violation set through a ResultSink (engine/result_sink.h) via the
// StreamPerK driver below, so callers can consume results
// incrementally; the Result<DetectionResult> entry points are a
// MaterializingSink on top.
#ifndef FAIRTOPK_DETECT_ENGINE_SEARCH_DRIVER_H_
#define FAIRTOPK_DETECT_ENGINE_SEARCH_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "detect/detection_result.h"
#include "detect/engine/result_sink.h"
#include "index/bitmap_index.h"
#include "index/pattern_cursor.h"
#include "pattern/pattern.h"
#include "pattern/result_set.h"

namespace fairtopk::engine {

/// Knobs of one top-down search. `num_threads` follows
/// DetectionConfig::num_threads: <= 1 sequential, 0 = hardware
/// concurrency.
struct SearchParams {
  int size_threshold = 1;
  size_t k = 1;
  int num_threads = 1;
};

/// A first-predicate branch of the search tree: the subtree of patterns
/// whose lowest-index predicate is (attr = value). Branches partition
/// the non-empty patterns, which makes them the sharding unit.
struct RootBranch {
  size_t attr;
  int16_t value;
};

/// All root branches of `space`, in search-tree order (attribute-major,
/// then value) — the canonical merge order.
std::vector<RootBranch> RootBranches(const PatternSpace& space);

/// Number of workers to launch for `requested` threads over
/// `num_branches` shards.
int ResolveThreadCount(int requested, size_t num_branches);

namespace internal {

/// Pre-order DFS below `node` (exclusive) over attributes >=
/// `first_attr`. The cursor must be positioned AT `node` (its frames
/// materialize node's intersection). For every child: evaluate counts
/// through the cursor, skip it when smaller than the size threshold
/// (anti-monotone prune), otherwise hand it to the visitor; descend iff
/// the visitor returns true. `node` is mutated in place and restored —
/// visitors must copy the pattern if they keep it.
template <typename Visitor>
void DescendFrom(const BitmapIndex& index, const SearchParams& params,
                 Pattern& node, size_t first_attr, PatternCursor& cursor,
                 Visitor& visitor, uint64_t& nodes_visited) {
  const PatternSpace& space = index.space();
  for (size_t j = first_attr; j < space.num_attributes(); ++j) {
    const int domain = space.domain_size(j);
    for (int16_t v = 0; v < domain; ++v) {
      ++nodes_visited;
      size_t size_d = 0;
      size_t top_k = 0;
      cursor.ChildCounts(j, v, params.k, &size_d, &top_k);
      if (size_d < static_cast<size_t>(params.size_threshold)) continue;
      node.SetValue(j, v);
      if (visitor(node, size_d, top_k)) {
        cursor.Push(j, v);
        DescendFrom(index, params, node, j + 1, cursor, visitor,
                    nodes_visited);
        cursor.Pop();
      }
      node.SetValue(j, Pattern::kUnspecified);
    }
  }
}

}  // namespace internal

/// True when `params` resolves to a single worker — entry points use
/// this to pick the zero-overhead sequential path (one visitor, no
/// per-branch states, no merge).
inline bool RunsSequentially(const SearchParams& params) {
  return ResolveThreadCount(params.num_threads,
                            std::numeric_limits<size_t>::max()) <= 1;
}

/// Sequential full search: drives one visitor over every branch in
/// branch order (the exact order the merge path reproduces). The
/// visitor observes the same node sequence Algorithm 1's explicit-stack
/// formulation would report.
template <typename Visitor>
void SequentialTopDown(const BitmapIndex& index, const SearchParams& params,
                       Visitor& visitor, DetectionStats* stats) {
  WallTimer timer;
  PatternCursor cursor(index);
  Pattern node = Pattern::Empty(index.space().num_attributes());
  uint64_t visited = 0;
  internal::DescendFrom(index, params, node, 0, cursor, visitor, visited);
  if (stats != nullptr) {
    stats->nodes_visited += visited;
    // Consume the delta, never the lifetime counter: a cursor reused
    // across search phases must contribute each hit exactly once.
    stats->cursor_reuse_hits += cursor.TakeReuseHits();
    stats->cpu_seconds += timer.ElapsedSeconds();
  }
}

/// Runs one visitor instance per root branch over that branch's subtree
/// (branch root included), sharding branches across workers, then hands
/// every visitor to `merge(branch_index, std::move(visitor))` in branch
/// order. `make_visitor()` must produce independent, movable visitors
/// whose operator()(const Pattern&, size_t size_d, size_t top_k) -> bool
/// decides descent. Thread-count invariance: per-branch work touches
/// only the (immutable) index and the branch's own visitor/cursor, and
/// the merge loop runs single-threaded in fixed order.
template <typename VisitorFactory, typename MergeFn>
void ShardedTopDown(const BitmapIndex& index, const SearchParams& params,
                    const VisitorFactory& make_visitor, const MergeFn& merge,
                    DetectionStats* stats) {
  const PatternSpace& space = index.space();
  const std::vector<RootBranch> branches = RootBranches(space);
  using VisitorT = std::decay_t<decltype(make_visitor())>;
  const int threads = ResolveThreadCount(params.num_threads, branches.size());

  if (threads <= 1) {
    // Single worker: one visitor sweeps the branches in order — the
    // concatenation of per-branch pre-orders, i.e. the same node
    // sequence the merge path folds — with none of the per-branch
    // state.
    VisitorT visitor = make_visitor();
    SequentialTopDown(index, params, visitor, stats);
    merge(0, std::move(visitor));
    return;
  }

  std::vector<VisitorT> states;
  states.reserve(branches.size());
  for (size_t i = 0; i < branches.size(); ++i) {
    states.push_back(make_visitor());
  }

  std::vector<DetectionStats> worker_stats(static_cast<size_t>(threads));
  std::atomic<size_t> next{0};
  auto worker = [&](size_t w) {
    WallTimer timer;
    PatternCursor cursor(index);
    Pattern node = Pattern::Empty(space.num_attributes());
    DetectionStats& ws = worker_stats[w];
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < branches.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      const RootBranch& b = branches[i];
      ++ws.nodes_visited;
      size_t size_d = 0;
      size_t top_k = 0;
      cursor.ChildCounts(b.attr, b.value, params.k, &size_d, &top_k);
      if (size_d < static_cast<size_t>(params.size_threshold)) continue;
      node.SetValue(b.attr, b.value);
      if (states[i](node, size_d, top_k)) {
        cursor.Push(b.attr, b.value);
        internal::DescendFrom(index, params, node, b.attr + 1, cursor,
                              states[i], ws.nodes_visited);
        cursor.Pop();
      }
      node.SetValue(b.attr, Pattern::kUnspecified);
    }
    ws.cursor_reuse_hits += cursor.TakeReuseHits();
    // Per-worker busy time; Merge() folds these into cpu_seconds (and
    // never into the wall-clock `seconds`, which the entry point owns).
    ws.cpu_seconds = timer.ElapsedSeconds();
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    pool.emplace_back(worker, static_cast<size_t>(w));
  }
  worker(0);
  for (std::thread& t : pool) t.join();

  if (stats != nullptr) {
    for (const DetectionStats& ws : worker_stats) stats->Merge(ws);
  }
  for (size_t i = 0; i < branches.size(); ++i) {
    merge(i, std::move(states[i]));
  }
}

/// The per-k streaming driver every detection algorithm runs through:
/// invokes `per_k(k, stats)` for each k in [config.k_min,
/// config.k_max] in ascending order and hands its finalized violation
/// set straight to `sink` — nothing is materialized here. `per_k` may
/// carry state across ks (the incremental algorithms do) and
/// accumulates work counters into the passed DetectionStats; the
/// driver owns the wall clock and the final OnStats call, enforcing
/// the ResultSink contract in one place. A sink error aborts the run
/// (the remaining ks are never searched). The wall clock covers the
/// per_k searches only — time spent inside the caller's sink is NOT
/// detection time, so a slow streaming consumer cannot inflate
/// `seconds` (which PR 3 deliberately keeps honest vs cpu_seconds).
template <typename PerKFn>
Status StreamPerK(const DetectionConfig& config, ResultSink& sink,
                  const PerKFn& per_k) {
  DetectionStats stats;
  for (int k = config.k_min; k <= config.k_max; ++k) {
    WallTimer timer;
    std::vector<Pattern> batch = per_k(k, stats);
    stats.seconds += timer.ElapsedSeconds();
    FAIRTOPK_RETURN_IF_ERROR(sink.OnResult(k, std::move(batch)));
  }
  sink.OnStats(stats);
  return Status::OK();
}

/// Output of a most-general below-bound search: Res and DRes of
/// Algorithm 1 (deferred = biased patterns shadowed by a more general
/// member of the result, which the incremental algorithms reuse).
struct SearchOutcome {
  MostGeneralResultSet result;
  std::vector<Pattern> deferred;
};

/// Algorithm 1's report step, shared between the per-branch visitors
/// and the cross-branch merge (the classification "res or deferred"
/// depends only on the SET of reported patterns, so applying the same
/// rule during merge reproduces the sequential outcome). One Update
/// scan classifies everything: inserted (evictions → deferred),
/// shadowed by a proper ancestor (→ deferred), or duplicate (dropped).
inline void ReportBiased(const Pattern& p, MostGeneralResultSet& res,
                         std::vector<Pattern>& deferred) {
  UpdateOutcome update = res.Update(p);
  if (update.inserted) {
    for (Pattern& evicted : update.evicted) {
      deferred.push_back(std::move(evicted));
    }
    return;
  }
  if (!update.duplicate) deferred.push_back(p);
}

namespace internal {

/// Visitor of Algorithm 1: stop descent at biased nodes (top-k count
/// strictly below the bound) and collect them with most-general
/// semantics; descend through unbiased nodes.
template <typename BoundFn>
class BelowBoundCollector {
 public:
  explicit BelowBoundCollector(const BoundFn& bound) : bound_(bound) {}

  bool operator()(const Pattern& p, size_t size_d, size_t top_k) {
    if (static_cast<double>(top_k) < bound_(size_d)) {
      ReportBiased(p, outcome_.result, outcome_.deferred);
      return false;
    }
    return true;
  }

  SearchOutcome& outcome() { return outcome_; }

 private:
  BoundFn bound_;
  SearchOutcome outcome_;
};

}  // namespace internal

/// Algorithm 1: full top-down search from the root at a single k,
/// reporting the most-general biased patterns. `bound` is any callable
/// double(size_t size_in_d) — inlined per instantiation.
template <typename BoundFn>
SearchOutcome MostGeneralBelow(const BitmapIndex& index,
                               const SearchParams& params,
                               const BoundFn& bound, DetectionStats* stats) {
  if (RunsSequentially(params)) {
    // Fast path: one collector reports straight into the final outcome;
    // no per-branch states and no re-classification on merge.
    internal::BelowBoundCollector<BoundFn> collector(bound);
    SequentialTopDown(index, params, collector, stats);
    return std::move(collector.outcome());
  }
  SearchOutcome merged;
  ShardedTopDown(
      index, params,
      [&bound] { return internal::BelowBoundCollector<BoundFn>(bound); },
      [&merged](size_t, internal::BelowBoundCollector<BoundFn>&& local) {
        SearchOutcome& out = local.outcome();
        for (const Pattern& p : out.result.patterns()) {
          ReportBiased(p, merged.result, merged.deferred);
        }
        for (Pattern& d : out.deferred) {
          ReportBiased(d, merged.result, merged.deferred);
        }
      },
      stats);
  return merged;
}

/// Generic sequential pre-order descent below `from` with an arbitrary
/// visitor (used by the incremental PROPBOUNDS machinery to expand
/// previously shadowed regions with its own bookkeeping).
template <typename Visitor>
void VisitBelowFrom(const BitmapIndex& index, const SearchParams& params,
                    const Pattern& from, Visitor& visitor,
                    DetectionStats* stats) {
  PatternCursor cursor(index);
  cursor.SeedFrom(from);
  Pattern node = from;
  uint64_t visited = 0;
  internal::DescendFrom(index, params, node,
                        static_cast<size_t>(from.MaxSpecifiedIndex() + 1),
                        cursor, visitor, visited);
  if (stats != nullptr) {
    stats->nodes_visited += visited;
    stats->cursor_reuse_hits += cursor.TakeReuseHits();
  }
}

/// Resumes Algorithm 1 below an interior node `from` (procedure
/// searchFromNode of Algorithm 2): `from` just stopped being biased, so
/// its never-explored subtree is searched now, reporting into the
/// caller's live result/deferred state. Sequential — callers invoke it
/// from the (inherently serial) incremental phases.
template <typename BoundFn>
void MostGeneralBelowFrom(const BitmapIndex& index, const SearchParams& params,
                          const Pattern& from, const BoundFn& bound,
                          MostGeneralResultSet& res,
                          std::vector<Pattern>& deferred,
                          DetectionStats* stats) {
  struct SharedCollector {
    const BoundFn& bound;
    MostGeneralResultSet& res;
    std::vector<Pattern>& deferred;
    bool operator()(const Pattern& p, size_t size_d, size_t top_k) {
      if (static_cast<double>(top_k) < bound(size_d)) {
        ReportBiased(p, res, deferred);
        return false;
      }
      return true;
    }
  };
  SharedCollector visitor{bound, res, deferred};
  VisitBelowFrom(index, params, from, visitor, stats);
}

namespace internal {

template <typename ViolatesFn, typename SetT>
class ExhaustiveVisitor {
 public:
  explicit ExhaustiveVisitor(const ViolatesFn& violates)
      : violates_(violates) {}

  bool operator()(const Pattern& p, size_t size_d, size_t top_k) {
    if (violates_(size_d, top_k)) set_.Update(p);
    return true;
  }

  SetT& set() { return set_; }

 private:
  ViolatesFn violates_;
  SetT set_;
};

}  // namespace internal

/// Exhaustive enumeration of every substantial pattern, filtering
/// violators into a result set with the semantics of `SetT`
/// (MostGeneralResultSet or MostSpecificResultSet). Violation is not
/// assumed anti-monotone, so descent never stops early. Used by the
/// upper-bound detector and the reporting-semantics variants.
template <typename SetT, typename ViolatesFn>
SetT ExhaustiveViolations(const BitmapIndex& index, const SearchParams& params,
                          const ViolatesFn& violates, DetectionStats* stats) {
  if (RunsSequentially(params)) {
    internal::ExhaustiveVisitor<ViolatesFn, SetT> visitor(violates);
    SequentialTopDown(index, params, visitor, stats);
    return std::move(visitor.set());
  }
  SetT merged;
  ShardedTopDown(
      index, params,
      [&violates] {
        return internal::ExhaustiveVisitor<ViolatesFn, SetT>(violates);
      },
      [&merged](size_t,
                internal::ExhaustiveVisitor<ViolatesFn, SetT>&& local) {
        for (const Pattern& p : local.set().patterns()) merged.Update(p);
      },
      stats);
  return merged;
}

}  // namespace fairtopk::engine

#endif  // FAIRTOPK_DETECT_ENGINE_SEARCH_DRIVER_H_
