#include "detect/engine/search_driver.h"

namespace fairtopk::engine {

std::vector<RootBranch> RootBranches(const PatternSpace& space) {
  std::vector<RootBranch> branches;
  for (size_t j = 0; j < space.num_attributes(); ++j) {
    const int domain = space.domain_size(j);
    for (int16_t v = 0; v < domain; ++v) {
      branches.push_back(RootBranch{j, v});
    }
  }
  return branches;
}

int ResolveThreadCount(int requested, size_t num_branches) {
  int threads = requested;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  if (threads < 1) threads = 1;
  if (static_cast<size_t>(threads) > num_branches && num_branches > 0) {
    threads = static_cast<int>(num_branches);
  }
  return threads;
}

}  // namespace fairtopk::engine
