// Upper-bound detection (the "Upper bounds" extension of Section III).
//
// For over-representation the most informative reports are the most
// specific patterns: if black females exceed the upper bound then so do
// blacks and females, so reporting the intersectional group carries the
// information. Following the paper, a pattern is reported when it is
// substantial (size >= tau_s), its top-k count exceeds the upper bound,
// and no substantial proper specialization also exceeds the bound.
#ifndef FAIRTOPK_DETECT_UPPER_BOUNDS_H_
#define FAIRTOPK_DETECT_UPPER_BOUNDS_H_

#include "detect/bounds.h"
#include "detect/detection_result.h"
#include "detect/engine/result_sink.h"

namespace fairtopk {

/// Detects, for each k, the most specific substantial patterns whose
/// top-k count strictly exceeds the global upper bound U_k, streamed
/// per k.
Status DetectGlobalUpperBoundsStream(const DetectionInput& input,
                                     const GlobalBoundSpec& bounds,
                                     const DetectionConfig& config,
                                     ResultSink& sink);

/// Materializing wrapper over DetectGlobalUpperBoundsStream.
Result<DetectionResult> DetectGlobalUpperBounds(const DetectionInput& input,
                                                const GlobalBoundSpec& bounds,
                                                const DetectionConfig& config);

/// Proportional variant: reports the most specific substantial patterns
/// with s_Rk(p) > beta * s_D(p) * k / |D|, streamed per k.
Status DetectPropUpperBoundsStream(const DetectionInput& input,
                                   const PropBoundSpec& bounds,
                                   const DetectionConfig& config,
                                   ResultSink& sink);

/// Materializing wrapper over DetectPropUpperBoundsStream.
Result<DetectionResult> DetectPropUpperBounds(const DetectionInput& input,
                                              const PropBoundSpec& bounds,
                                              const DetectionConfig& config);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_UPPER_BOUNDS_H_
