#include "detect/prop_bounds.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "detect/engine/search_driver.h"
#include "pattern/result_set.h"
#include "pattern/search_tree.h"

namespace fairtopk {

namespace {

/// Mutable search state shared by the helper routines below.
class PropSearch {
 public:
  PropSearch(const BitmapIndex& index, const PropBoundSpec& bounds,
             const DetectionConfig& config, DetectionStats* stats)
      : index_(index),
        space_(index.space()),
        config_(config),
        stats_(stats),
        bounds_(bounds),
        alpha_(bounds.alpha),
        n_(static_cast<double>(index.num_rows())) {}

  /// Full top-down search at k_min (TopDownSearch of Algorithm 3), run
  /// through the engine: each first-predicate subtree is harvested
  /// independently (and in parallel when configured), then the
  /// harvests are folded into the shared state in branch order — the
  /// exact pre-order the sequential search would have produced. The
  /// sequential path skips the harvest buffering and writes into the
  /// shared maps directly (same pre-order, so identical state).
  void InitialSearch() {
    const int k = config_.k_min;
    const engine::SearchParams params{config_.size_threshold,
                                      static_cast<size_t>(k),
                                      config_.num_threads};
    if (engine::RunsSequentially(params)) {
      struct DirectVisitor {
        PropSearch* s;
        int k;
        bool operator()(const Pattern& p, size_t size_d, size_t top_k) {
          if (s->Biased(top_k, size_d, k)) {
            s->store_.emplace(p, NodeInfo{size_d, false});
            s->Place(p);
            return false;
          }
          s->store_.emplace(p, NodeInfo{size_d, true});
          s->RegisterKTilde(p, top_k, size_d, k);
          return true;
        }
      };
      DirectVisitor visitor{this, k};
      engine::SequentialTopDown(index_, params, visitor, stats_);
      return;
    }
    struct Harvest {
      const PropSearch* owner;
      int k;
      // Pre-order records; folded into the shared maps on merge.
      std::vector<std::pair<Pattern, NodeInfo>> store;
      std::vector<Pattern> biased;
      std::vector<std::pair<int, Pattern>> schedule;
      bool operator()(const Pattern& p, size_t size_d, size_t top_k) {
        if (owner->Biased(top_k, size_d, k)) {
          store.emplace_back(p, NodeInfo{size_d, false});
          biased.push_back(p);
          return false;
        }
        store.emplace_back(p, NodeInfo{size_d, true});
        const int kt = owner->KTilde(top_k, size_d, k);
        if (kt != 0) schedule.emplace_back(kt, p);
        return true;
      }
    };
    engine::ShardedTopDown(
        index_, params, [&] { return Harvest{this, k, {}, {}, {}}; },
        [this](size_t, Harvest&& h) {
          // Subtrees are disjoint, so every store/schedule entry is new.
          for (auto& entry : h.store) {
            store_.emplace(std::move(entry.first), entry.second);
          }
          for (auto& reg : h.schedule) {
            schedule_[reg.first].push_back(std::move(reg.second));
          }
          for (const Pattern& p : h.biased) Place(p);
        },
        stats_);
  }

  /// One incremental step: process the arrival of the tuple at rank k
  /// (0-based position k-1), fire the k-tilde schedule, and reconcile
  /// the deferred set.
  void Step(int k) {
    // (1) Selective top-down descent through patterns the new tuple
    // satisfies (selectiveTD of Algorithm 3).
    const size_t pos = static_cast<size_t>(k - 1);
    std::vector<Pattern> roots =
        GenerateChildren(Pattern::Empty(space_.num_attributes()), space_);
    for (const Pattern& p : roots) {
      if (index_.RankedRowSatisfies(p, pos)) Visit(p, k, /*full=*/false);
    }

    // (2) k-tilde firings: patterns untouched by the new tuple whose
    // scheduled transition rank is k (Algorithm 3, line 6). Entries are
    // conservative (counts only grow), so each firing re-validates
    // against a fresh count and re-registers when still unbiased.
    auto bucket_it = schedule_.find(k);
    if (bucket_it != schedule_.end()) {
      std::vector<Pattern> fired = std::move(bucket_it->second);
      schedule_.erase(bucket_it);
      for (const Pattern& p : fired) {
        if (res_.Contains(p) || deferred_.count(p) > 0) continue;
        CountStat();
        const size_t size_d = SizeOf(p);
        const size_t top_k = index_.TopKCount(p, static_cast<size_t>(k));
        if (Biased(top_k, size_d, k)) {
          Place(p);
        } else {
          RegisterKTilde(p, top_k, size_d, k);
        }
      }
    }

    // (3) Reconcile the deferred set: entries whose subsuming ancestor
    // left Res are promoted; entries that stopped being biased leave
    // (their counts grew while shadowed by a biased ancestor).
    ReconcileDeferred(k);
  }

  /// Current most-general biased patterns, sorted.
  std::vector<Pattern> Snapshot() const { return res_.Sorted(); }

 private:
  struct NodeInfo {
    size_t size_d = 0;
    bool expanded = false;
  };

  void CountStat() {
    if (stats_ != nullptr) ++stats_->nodes_visited;
  }

  // Single canonical bound evaluation (PropBoundSpec::LowerAt) shared
  // with ITERTD and the test oracles, so floating-point boundary cases
  // classify identically everywhere.
  bool Biased(size_t top_k, size_t size_d, int k) const {
    return static_cast<double>(top_k) <
           bounds_.LowerAt(static_cast<int>(size_d), k, index_.num_rows());
  }

  /// Minimal k' > k with top_k < alpha * size_d * k' / n, or 0 when it
  /// lies beyond k_max (no registration needed).
  int KTilde(size_t top_k, size_t size_d, int k) const {
    const double denom = alpha_ * static_cast<double>(size_d);
    if (denom <= 0.0) return 0;
    int kt = static_cast<int>(
                 std::floor(static_cast<double>(top_k) * n_ / denom)) +
             1;
    if (kt <= k) kt = k + 1;
    // Guard against floating-point rounding on the floor above.
    while (kt > k + 1 && Biased(top_k, size_d, kt - 1)) --kt;
    while (!Biased(top_k, size_d, kt)) ++kt;
    return kt > config_.k_max ? 0 : kt;
  }

  void RegisterKTilde(const Pattern& p, size_t top_k, size_t size_d, int k) {
    const int kt = KTilde(top_k, size_d, k);
    if (kt != 0) schedule_[kt].push_back(p);
  }

  size_t SizeOf(const Pattern& p) {
    auto it = store_.find(p);
    if (it != store_.end()) return it->second.size_d;
    const size_t size_d = index_.PatternCount(p);
    store_.emplace(p, NodeInfo{size_d, false});
    return size_d;
  }

  /// Inserts a biased pattern into Res or the deferred set, keeping the
  /// most-general invariant (evictions flow into the deferred set).
  void Place(const Pattern& p) {
    if (res_.Contains(p) || deferred_.count(p) > 0) return;
    if (res_.HasProperAncestorOf(p)) {
      deferred_.insert(p);
      return;
    }
    UpdateOutcome update = res_.Update(p);
    for (const Pattern& evicted : update.evicted) deferred_.insert(evicted);
  }

  /// Evaluates `p` at iteration `k` and descends: fully when the
  /// subtree below `p` has never been explored (or `full` is set by an
  /// un-biased ancestor), selectively (new-tuple-satisfying children
  /// only) otherwise.
  void Visit(const Pattern& p, int k, bool full) {
    CountStat();
    auto [it, inserted] = store_.try_emplace(p);
    NodeInfo& node = it->second;
    if (inserted) node.size_d = index_.PatternCount(p);
    const size_t size_d = node.size_d;
    if (size_d < static_cast<size_t>(config_.size_threshold)) return;
    const size_t top_k = index_.TopKCount(p, static_cast<size_t>(k));

    if (Biased(top_k, size_d, k)) {
      Place(p);
      return;
    }

    // Not biased: make sure it is not reported, schedule its future
    // transition, and descend.
    res_.Remove(p);
    deferred_.erase(p);
    RegisterKTilde(p, top_k, size_d, k);

    const bool explore_all = full || !node.expanded;
    node.expanded = true;
    const size_t pos = static_cast<size_t>(k - 1);
    const int start = p.MaxSpecifiedIndex() + 1;
    for (size_t j = static_cast<size_t>(start); j < space_.num_attributes();
         ++j) {
      const int domain = space_.domain_size(j);
      for (int16_t v = 0; v < domain; ++v) {
        if (explore_all) {
          Visit(p.With(j, v), k, full);
        } else if (index_.RankedCode(pos, j) == v) {
          // Child adds predicate A_j = v; the new tuple satisfies the
          // child iff it satisfies p (it does) and carries v in A_j.
          Visit(p.With(j, v), k, /*full=*/false);
        }
      }
    }
  }

  /// Full engine-driven expansion below `d` mirroring Visit(·, k,
  /// full=true): used when a deferred pattern stops being biased and
  /// nothing shadows its (never-explored) subtree anymore.
  void ExpandFullyBelow(const Pattern& d, int k) {
    struct ExpandVisitor {
      PropSearch* s;
      int k;
      bool operator()(const Pattern& p, size_t size_d, size_t top_k) {
        if (s->Biased(top_k, size_d, k)) {
          s->store_.try_emplace(p, NodeInfo{size_d, false});
          s->Place(p);
          return false;
        }
        s->res_.Remove(p);
        s->deferred_.erase(p);
        s->RegisterKTilde(p, top_k, size_d, k);
        auto [it, inserted] = s->store_.try_emplace(p, NodeInfo{size_d, true});
        if (!inserted) it->second.expanded = true;
        return true;
      }
    };
    const engine::SearchParams params{config_.size_threshold,
                                      static_cast<size_t>(k), 1};
    ExpandVisitor visitor{this, k};
    engine::VisitBelowFrom(index_, params, d, visitor, stats_);
  }

  void ReconcileDeferred(int k) {
    std::vector<Pattern> pending(deferred_.begin(), deferred_.end());
    // Deterministic order keeps promotion cascades reproducible.
    std::sort(pending.begin(), pending.end());
    for (const Pattern& d : pending) {
      if (deferred_.count(d) == 0) continue;  // already reconciled
      CountStat();
      const size_t size_d = SizeOf(d);
      const size_t top_k = index_.TopKCount(d, static_cast<size_t>(k));
      if (!Biased(top_k, size_d, k)) {
        // Stopped being biased while shadowed by a reported ancestor.
        deferred_.erase(d);
        RegisterKTilde(d, top_k, size_d, k);
        // Its subtree stays unexplored while an ancestor shadows the
        // region; expand now if nothing shadows it anymore.
        if (!res_.HasProperAncestorOf(d)) {
          store_[d].expanded = true;
          ExpandFullyBelow(d, k);
        }
        continue;
      }
      if (!res_.HasProperAncestorOf(d)) {
        deferred_.erase(d);
        UpdateOutcome update = res_.Update(d);
        for (const Pattern& evicted : update.evicted) {
          deferred_.insert(evicted);
        }
      }
    }
  }

  const BitmapIndex& index_;
  const PatternSpace& space_;
  const DetectionConfig config_;
  DetectionStats* stats_;
  const PropBoundSpec bounds_;
  const double alpha_;
  const double n_;

  MostGeneralResultSet res_;
  std::unordered_set<Pattern, PatternHash> deferred_;
  std::unordered_map<Pattern, NodeInfo, PatternHash> store_;
  std::unordered_map<int, std::vector<Pattern>> schedule_;
};

}  // namespace

Status DetectPropBoundsStream(const DetectionInput& input,
                              const PropBoundSpec& bounds,
                              const DetectionConfig& config,
                              ResultSink& sink) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  if (bounds.alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  // The search state is built on the first iteration so it can bind to
  // the driver's DetectionStats (one object for the whole run).
  std::optional<PropSearch> search;
  return engine::StreamPerK(
      config, sink, [&](int k, DetectionStats& stats) {
        if (!search.has_value()) {
          search.emplace(input.index(), bounds, config, &stats);
          search->InitialSearch();
        } else {
          search->Step(k);
        }
        return search->Snapshot();
      });
}

Result<DetectionResult> DetectPropBounds(const DetectionInput& input,
                                         const PropBoundSpec& bounds,
                                         const DetectionConfig& config) {
  return MaterializeStream(input, config, [&](ResultSink& sink) {
    return DetectPropBoundsStream(input, bounds, config, sink);
  });
}

}  // namespace fairtopk
