// Automatic parameter suggestion — the "automatic suggestion for
// thresholds" future-work direction of Section VIII.
//
// The paper's experiments hand-pick tau_s and the bound levels so the
// number of reported groups stays in a digestible 1-100 range. This
// module automates that calibration: given a dataset, ranking, and k
// range, it proposes a size threshold, a global-bound staircase, and a
// proportional alpha such that the number of reported groups at k_max
// does not exceed a target.
#ifndef FAIRTOPK_DETECT_SUGGEST_H_
#define FAIRTOPK_DETECT_SUGGEST_H_

#include "detect/bounds.h"
#include "detect/detection_result.h"

namespace fairtopk {

/// Calibration targets for SuggestParameters.
struct SuggestOptions {
  /// Upper target for groups reported at k_max (the paper keeps most
  /// runs below 100; default aims lower for readability).
  size_t max_groups = 20;
  /// Size threshold as a fraction of |D|, clamped to at least
  /// `min_size_threshold`.
  double size_fraction = 0.05;
  int min_size_threshold = 10;
  /// Granularity of the bound search (levels tried per unit).
  int search_steps = 20;
};

/// The calibrated parameters and the group counts they produce.
struct SuggestedParameters {
  int size_threshold = 0;
  /// L_k = round(level * k) staircase with steps every 10 ranks.
  double global_level = 0.0;
  GlobalBoundSpec global_bounds;
  /// Proportional multiplier.
  double alpha = 0.0;
  /// Groups reported at k_max under the suggested global bounds.
  size_t groups_at_kmax_global = 0;
  /// Groups reported at k_max under the suggested alpha.
  size_t groups_at_kmax_prop = 0;
};

/// Suggests detection parameters for `input` over the k range of
/// `config` (its size_threshold field is ignored). Because the number
/// of most-general reported groups is not monotone in bound
/// strictness, every candidate level is evaluated; the suggestion is
/// the most informative level within budget (largest group count not
/// exceeding `options.max_groups`, ties toward stricter bounds). When
/// no level fits the budget, the count-minimizing level is returned —
/// inspect the reported counts to detect that case.
Result<SuggestedParameters> SuggestParameters(const DetectionInput& input,
                                              const DetectionConfig& config,
                                              const SuggestOptions& options);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_SUGGEST_H_
