#include "detect/bounds.h"

#include <algorithm>

namespace fairtopk {

StepFunction StepFunction::Constant(double value) {
  StepFunction f;
  f.steps_ = {{0, value}};
  return f;
}

Result<StepFunction> StepFunction::FromSteps(
    std::vector<std::pair<int, double>> steps) {
  if (steps.empty()) {
    return Status::InvalidArgument("step function needs at least one step");
  }
  for (size_t i = 1; i < steps.size(); ++i) {
    if (steps[i].first <= steps[i - 1].first) {
      return Status::InvalidArgument(
          "step starts must be strictly increasing");
    }
  }
  StepFunction f;
  f.steps_ = std::move(steps);
  return f;
}

double StepFunction::At(int k) const {
  double value = steps_.front().second;
  for (const auto& [start, v] : steps_) {
    if (k >= start) value = v;
    else break;
  }
  return value;
}

bool StepFunction::IsNonDecreasing() const {
  for (size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].second < steps_[i - 1].second) return false;
  }
  return true;
}

GlobalBoundSpec GlobalBoundSpec::PaperDefault(int k_max) {
  std::vector<std::pair<int, double>> steps;
  for (int start = 10, level = 10; start <= k_max; start += 10, level += 10) {
    steps.emplace_back(start, static_cast<double>(level));
  }
  if (steps.empty()) steps.emplace_back(0, 10.0);
  GlobalBoundSpec spec;
  // Construction above guarantees strictly increasing starts.
  spec.lower = *StepFunction::FromSteps(std::move(steps));
  return spec;
}

Result<GlobalBoundSpec> GlobalBoundSpec::FractionStaircase(double fraction,
                                                           int k_min,
                                                           int k_max) {
  std::vector<std::pair<int, double>> steps;
  for (int start = std::min(k_min, 10); start <= k_max; start += 10) {
    steps.emplace_back(start, std::max(1.0, fraction * start));
  }
  if (steps.empty()) {
    steps.emplace_back(k_min, fraction * k_min);
  }
  FAIRTOPK_ASSIGN_OR_RETURN(StepFunction staircase,
                            StepFunction::FromSteps(std::move(steps)));
  GlobalBoundSpec spec;
  spec.lower = staircase;
  return spec;
}

}  // namespace fairtopk
