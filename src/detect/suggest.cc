#include "detect/suggest.h"

#include <algorithm>
#include <cmath>

#include "detect/topdown.h"

namespace fairtopk {

namespace {

/// Builds the L_k = round(level * k) staircase with steps every 10
/// ranks across [k_min, k_max].
GlobalBoundSpec StaircaseFor(double level, int k_min, int k_max) {
  std::vector<std::pair<int, double>> steps;
  const int first = std::min(k_min, 10);
  for (int start = first; start <= k_max; start += 10) {
    steps.emplace_back(start, std::round(level * start));
  }
  if (steps.empty()) {
    steps.emplace_back(k_min, std::round(level * k_min));
  }
  GlobalBoundSpec spec;
  // Starts are strictly increasing by construction.
  spec.lower = *StepFunction::FromSteps(std::move(steps));
  return spec;
}

/// Number of most-general groups reported at k_max for a bound (any
/// callable double(size_t size_in_d)).
template <typename BoundFn>
size_t GroupsAt(const DetectionInput& input, int tau, int k,
                const BoundFn& bound, int num_threads) {
  TopDownOutcome outcome = TopDownSearch(input.index(), tau, k, bound,
                                         nullptr, num_threads);
  return outcome.result.size();
}

/// Candidate selection shared by both measures. The reported-group
/// count is NOT monotone in bound strictness (the most-general filter
/// can collapse many deep violations into a few broad ones), so every
/// level is evaluated and the most informative one within budget wins:
/// the largest group count not exceeding the budget, ties broken
/// toward the stricter level. When no level fits the budget, the
/// level minimizing the count is returned (and the caller can see the
/// overshoot in the reported count).
struct LevelChoice {
  double level = 0.0;
  size_t groups = 0;
};

template <typename CountFn>
LevelChoice ChooseLevel(int search_steps, size_t max_groups,
                        const CountFn& count_at) {
  LevelChoice best_within{0.0, 0};
  bool have_within = false;
  LevelChoice best_overall{0.0, SIZE_MAX};
  for (int step = search_steps; step >= 1; --step) {
    const double level =
        static_cast<double>(step) / static_cast<double>(search_steps);
    const size_t groups = count_at(level);
    if (groups < best_overall.groups) best_overall = {level, groups};
    if (groups <= max_groups) {
      // Prefer more reported groups (more informative), then the
      // stricter level (loop order visits stricter levels first).
      if (!have_within || groups > best_within.groups) {
        best_within = {level, groups};
        have_within = true;
      }
    }
  }
  return have_within ? best_within : best_overall;
}

}  // namespace

Result<SuggestedParameters> SuggestParameters(const DetectionInput& input,
                                              const DetectionConfig& config,
                                              const SuggestOptions& options) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(
      {config.k_min, config.k_max, std::max(1, options.min_size_threshold)}));
  if (options.max_groups == 0 || options.search_steps < 2) {
    return Status::InvalidArgument("invalid suggestion options");
  }
  if (options.size_fraction <= 0.0 || options.size_fraction >= 1.0) {
    return Status::InvalidArgument("size_fraction must be in (0, 1)");
  }

  SuggestedParameters out;
  out.size_threshold = std::max(
      options.min_size_threshold,
      static_cast<int>(options.size_fraction *
                       static_cast<double>(input.num_rows())));

  // Global bounds: levels are fractions of k, L_k = round(level * k).
  LevelChoice global = ChooseLevel(
      options.search_steps, options.max_groups, [&](double level) {
        GlobalBoundSpec candidate =
            StaircaseFor(level, config.k_min, config.k_max);
        const double bound = candidate.lower.At(config.k_max);
        return GroupsAt(input, out.size_threshold, config.k_max,
                        [bound](size_t) { return bound; },
                        config.num_threads);
      });
  out.global_level = global.level;
  out.global_bounds =
      StaircaseFor(global.level, config.k_min, config.k_max);
  out.groups_at_kmax_global = global.groups;

  // Proportional alpha.
  const size_t n = input.num_rows();
  LevelChoice prop = ChooseLevel(
      options.search_steps, options.max_groups, [&](double alpha) {
        PropBoundSpec spec;
        spec.alpha = alpha;
        const int k = config.k_max;
        return GroupsAt(
            input, out.size_threshold, k,
            [&spec, k, n](size_t size_d) {
              return spec.LowerAt(static_cast<int>(size_d), k, n);
            },
            config.num_threads);
      });
  out.alpha = prop.level;
  out.groups_at_kmax_prop = prop.groups;
  return out;
}

}  // namespace fairtopk
