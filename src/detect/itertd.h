// ITERTD: the paper's baseline (Section IV-A). Runs a fresh top-down
// search (Algorithm 1) independently for every k in [k_min, k_max].
// Serves as the executable specification against which the optimized
// algorithms are property-tested.
//
// Each detector ships two entry points: the streaming core (per-k
// violation sets delivered through a ResultSink the moment they are
// final) and a materializing wrapper returning the full
// DetectionResult. Both produce bit-identical per-k sets.
#ifndef FAIRTOPK_DETECT_ITERTD_H_
#define FAIRTOPK_DETECT_ITERTD_H_

#include "detect/bounds.h"
#include "detect/detection_result.h"
#include "detect/engine/result_sink.h"

namespace fairtopk {

/// Baseline detection of groups violating global lower bounds
/// (Problem 3.1, lower bounds), streamed per k.
Status DetectGlobalIterTDStream(const DetectionInput& input,
                                const GlobalBoundSpec& bounds,
                                const DetectionConfig& config,
                                ResultSink& sink);

/// Materializing wrapper over DetectGlobalIterTDStream.
Result<DetectionResult> DetectGlobalIterTD(const DetectionInput& input,
                                           const GlobalBoundSpec& bounds,
                                           const DetectionConfig& config);

/// Baseline detection of groups with biased proportional representation
/// (Problem 3.2, lower bounds), streamed per k.
Status DetectPropIterTDStream(const DetectionInput& input,
                              const PropBoundSpec& bounds,
                              const DetectionConfig& config,
                              ResultSink& sink);

/// Materializing wrapper over DetectPropIterTDStream.
Result<DetectionResult> DetectPropIterTD(const DetectionInput& input,
                                         const PropBoundSpec& bounds,
                                         const DetectionConfig& config);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_ITERTD_H_
