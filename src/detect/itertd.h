// ITERTD: the paper's baseline (Section IV-A). Runs a fresh top-down
// search (Algorithm 1) independently for every k in [k_min, k_max].
// Serves as the executable specification against which the optimized
// algorithms are property-tested.
#ifndef FAIRTOPK_DETECT_ITERTD_H_
#define FAIRTOPK_DETECT_ITERTD_H_

#include "detect/bounds.h"
#include "detect/detection_result.h"

namespace fairtopk {

/// Baseline detection of groups violating global lower bounds
/// (Problem 3.1, lower bounds).
Result<DetectionResult> DetectGlobalIterTD(const DetectionInput& input,
                                           const GlobalBoundSpec& bounds,
                                           const DetectionConfig& config);

/// Baseline detection of groups with biased proportional representation
/// (Problem 3.2, lower bounds).
Result<DetectionResult> DetectPropIterTD(const DetectionInput& input,
                                         const PropBoundSpec& bounds,
                                         const DetectionConfig& config);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_ITERTD_H_
