#include "detect/upper_bounds.h"

#include "common/timer.h"
#include "detect/engine/search_driver.h"
#include "pattern/result_set.h"

namespace fairtopk {

namespace {

/// Exceeds-a-flat-upper-bound test, inlined into the engine's hot loop.
struct AboveConstant {
  double bound;
  bool operator()(size_t, size_t top_k) const {
    return static_cast<double>(top_k) > bound;
  }
};

/// Exceeds the proportional upper bound beta * size_d * k / n.
struct AboveLinear {
  double factor;  // beta * k / n
  bool operator()(size_t size_d, size_t top_k) const {
    return static_cast<double>(top_k) >
           factor * static_cast<double>(size_d);
  }
};

}  // namespace

Result<DetectionResult> DetectGlobalUpperBounds(
    const DetectionInput& input, const GlobalBoundSpec& bounds,
    const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  WallTimer timer;
  DetectionResult result(config.k_min, config.k_max);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    const engine::SearchParams params{config.size_threshold,
                                      static_cast<size_t>(k),
                                      config.num_threads};
    MostSpecificResultSet res =
        engine::ExhaustiveViolations<MostSpecificResultSet>(
            input.index(), params, AboveConstant{bounds.upper.At(k)},
            &result.stats());
    result.MutableAtK(k) = res.Sorted();
  }
  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

Result<DetectionResult> DetectPropUpperBounds(const DetectionInput& input,
                                              const PropBoundSpec& bounds,
                                              const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  if (bounds.beta <= bounds.alpha) {
    return Status::InvalidArgument("beta must exceed alpha");
  }
  WallTimer timer;
  const double n = static_cast<double>(input.num_rows());
  DetectionResult result(config.k_min, config.k_max);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    const engine::SearchParams params{config.size_threshold,
                                      static_cast<size_t>(k),
                                      config.num_threads};
    const double factor = bounds.beta * static_cast<double>(k) / n;
    MostSpecificResultSet res =
        engine::ExhaustiveViolations<MostSpecificResultSet>(
            input.index(), params, AboveLinear{factor}, &result.stats());
    result.MutableAtK(k) = res.Sorted();
  }
  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairtopk
