#include "detect/upper_bounds.h"

#include <functional>

#include "common/timer.h"
#include "pattern/result_set.h"
#include "pattern/search_tree.h"

namespace fairtopk {

namespace {

/// Upper bound on the top-k count of a pattern of the given size in D.
using UpperBoundFn = std::function<double(size_t size_in_d)>;

/// Explores every substantial pattern (size >= threshold) and keeps
/// the most specific violators of the upper bound. Violation is not
/// anti-monotone downward in the subtree (counts shrink as predicates
/// are added), so the search prunes only by size and filters via the
/// most-specific result set.
void SearchUpper(const BitmapIndex& index, int size_threshold, int k,
                 const UpperBoundFn& upper, MostSpecificResultSet& res,
                 DetectionStats* stats) {
  const PatternSpace& space = index.space();
  std::vector<Pattern> stack;
  AppendChildren(Pattern::Empty(space.num_attributes()), space, stack);
  while (!stack.empty()) {
    Pattern p = std::move(stack.back());
    stack.pop_back();
    if (stats != nullptr) ++stats->nodes_visited;
    const size_t size_d = index.PatternCount(p);
    if (size_d < static_cast<size_t>(size_threshold)) continue;
    const size_t top_k = index.TopKCount(p, static_cast<size_t>(k));
    if (static_cast<double>(top_k) > upper(size_d)) {
      res.Update(p);
    }
    AppendChildren(p, space, stack);
  }
}

}  // namespace

Result<DetectionResult> DetectGlobalUpperBounds(
    const DetectionInput& input, const GlobalBoundSpec& bounds,
    const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  WallTimer timer;
  DetectionResult result(config.k_min, config.k_max);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    const double upper = bounds.upper.At(k);
    MostSpecificResultSet res;
    SearchUpper(input.index(), config.size_threshold, k,
                [upper](size_t) { return upper; }, res, &result.stats());
    result.MutableAtK(k) = res.Sorted();
  }
  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

Result<DetectionResult> DetectPropUpperBounds(const DetectionInput& input,
                                              const PropBoundSpec& bounds,
                                              const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  if (bounds.beta <= bounds.alpha) {
    return Status::InvalidArgument("beta must exceed alpha");
  }
  WallTimer timer;
  const double n = static_cast<double>(input.num_rows());
  DetectionResult result(config.k_min, config.k_max);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    const double factor = bounds.beta * static_cast<double>(k) / n;
    MostSpecificResultSet res;
    SearchUpper(
        input.index(), config.size_threshold, k,
        [factor](size_t size_d) {
          return factor * static_cast<double>(size_d);
        },
        res, &result.stats());
    result.MutableAtK(k) = res.Sorted();
  }
  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairtopk
