#include "detect/upper_bounds.h"

#include <utility>

#include "detect/engine/search_driver.h"
#include "pattern/result_set.h"

namespace fairtopk {

namespace {

/// Exceeds-a-flat-upper-bound test, inlined into the engine's hot loop.
struct AboveConstant {
  double bound;
  bool operator()(size_t, size_t top_k) const {
    return static_cast<double>(top_k) > bound;
  }
};

/// Exceeds the proportional upper bound beta * size_d * k / n.
struct AboveLinear {
  double factor;  // beta * k / n
  bool operator()(size_t size_d, size_t top_k) const {
    return static_cast<double>(top_k) >
           factor * static_cast<double>(size_d);
  }
};

}  // namespace

Status DetectGlobalUpperBoundsStream(const DetectionInput& input,
                                     const GlobalBoundSpec& bounds,
                                     const DetectionConfig& config,
                                     ResultSink& sink) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  return engine::StreamPerK(
      config, sink, [&](int k, DetectionStats& stats) {
        const engine::SearchParams params{config.size_threshold,
                                          static_cast<size_t>(k),
                                          config.num_threads};
        MostSpecificResultSet res =
            engine::ExhaustiveViolations<MostSpecificResultSet>(
                input.index(), params, AboveConstant{bounds.upper.At(k)},
                &stats);
        return res.Sorted();
      });
}

Result<DetectionResult> DetectGlobalUpperBounds(
    const DetectionInput& input, const GlobalBoundSpec& bounds,
    const DetectionConfig& config) {
  return MaterializeStream(input, config, [&](ResultSink& sink) {
    return DetectGlobalUpperBoundsStream(input, bounds, config, sink);
  });
}

Status DetectPropUpperBoundsStream(const DetectionInput& input,
                                   const PropBoundSpec& bounds,
                                   const DetectionConfig& config,
                                   ResultSink& sink) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  if (bounds.beta <= bounds.alpha) {
    return Status::InvalidArgument("beta must exceed alpha");
  }
  const double n = static_cast<double>(input.num_rows());
  return engine::StreamPerK(
      config, sink, [&](int k, DetectionStats& stats) {
        const engine::SearchParams params{config.size_threshold,
                                          static_cast<size_t>(k),
                                          config.num_threads};
        const double factor = bounds.beta * static_cast<double>(k) / n;
        MostSpecificResultSet res =
            engine::ExhaustiveViolations<MostSpecificResultSet>(
                input.index(), params, AboveLinear{factor}, &stats);
        return res.Sorted();
      });
}

Result<DetectionResult> DetectPropUpperBounds(const DetectionInput& input,
                                              const PropBoundSpec& bounds,
                                              const DetectionConfig& config) {
  return MaterializeStream(input, config, [&](ResultSink& sink) {
    return DetectPropUpperBoundsStream(input, bounds, config, sink);
  });
}

}  // namespace fairtopk
