#include "detect/topdown.h"

#include "pattern/search_tree.h"

namespace fairtopk {

TopDownOutcome TopDownSearch(const BitmapIndex& index, int size_threshold,
                             int k, const LowerBoundFn& lower_bound,
                             DetectionStats* stats) {
  TopDownOutcome outcome;
  const PatternSpace& space = index.space();
  std::vector<Pattern> stack;
  AppendChildren(Pattern::Empty(space.num_attributes()), space, stack);

  while (!stack.empty()) {
    Pattern p = std::move(stack.back());
    stack.pop_back();
    if (stats != nullptr) ++stats->nodes_visited;

    const size_t size_d = index.PatternCount(p);
    if (size_d < static_cast<size_t>(size_threshold)) {
      // Anti-monotone prune: every descendant is at least as specific,
      // hence no larger.
      continue;
    }
    const size_t top_k = index.TopKCount(p, static_cast<size_t>(k));
    if (static_cast<double>(top_k) < lower_bound(size_d)) {
      if (outcome.result.HasProperAncestorOf(p)) {
        outcome.deferred.push_back(p);
      } else {
        UpdateOutcome update = outcome.result.Update(p);
        for (Pattern& evicted : update.evicted) {
          outcome.deferred.push_back(std::move(evicted));
        }
      }
      continue;
    }
    AppendChildren(p, space, stack);
  }
  return outcome;
}

}  // namespace fairtopk
