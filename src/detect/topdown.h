// Algorithm 1 of the paper: single-k top-down search over the search
// tree, pruning by the anti-monotone size threshold and stopping
// descent at biased nodes. Shared by the ITERTD baseline and by the
// full searches GLOBALBOUNDS issues when the bound staircase steps up.
//
// Patterns are biased when their top-k count falls strictly below the
// lower bound. The bound is supplied as a callable of the pattern's
// size in D, which covers both problems:
//   global:       bound(size) = L_k
//   proportional: bound(size) = alpha * size * k / |D|
#ifndef FAIRTOPK_DETECT_TOPDOWN_H_
#define FAIRTOPK_DETECT_TOPDOWN_H_

#include <functional>
#include <vector>

#include "detect/detection_result.h"
#include "index/bitmap_index.h"
#include "pattern/result_set.h"

namespace fairtopk {

/// Lower bound on the top-k count of a pattern, as a function of its
/// size in D.
using LowerBoundFn = std::function<double(size_t size_in_d)>;

/// Output of one top-down search: the most-general biased patterns
/// (Res) and the biased patterns encountered that are subsumed by a
/// member of Res (DRes), which the incremental algorithms reuse.
struct TopDownOutcome {
  MostGeneralResultSet result;
  std::vector<Pattern> deferred;
};

/// Runs Algorithm 1 at a single `k`. Visited-node counts are added to
/// `stats` when provided.
TopDownOutcome TopDownSearch(const BitmapIndex& index, int size_threshold,
                             int k, const LowerBoundFn& lower_bound,
                             DetectionStats* stats);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_TOPDOWN_H_
