// Algorithm 1 of the paper: single-k top-down search over the search
// tree, pruning by the anti-monotone size threshold and stopping
// descent at biased nodes. Shared by the ITERTD baseline and by the
// full searches GLOBALBOUNDS issues when the bound staircase steps up.
//
// Patterns are biased when their top-k count falls strictly below the
// lower bound. The bound is supplied as a callable of the pattern's
// size in D, which covers both problems:
//   global:       bound(size) = L_k
//   proportional: bound(size) = alpha * size * k / |D|
//
// This header is a thin entry point over the unified search engine
// (detect/engine/search_driver.h), which owns the DFS, the cursor-based
// incremental counting, and the sharded parallelism. The bound is a
// template parameter so the per-node test inlines — pass a lambda or a
// small struct, never a std::function.
#ifndef FAIRTOPK_DETECT_TOPDOWN_H_
#define FAIRTOPK_DETECT_TOPDOWN_H_

#include <vector>

#include "detect/detection_result.h"
#include "detect/engine/search_driver.h"
#include "index/bitmap_index.h"
#include "pattern/result_set.h"

namespace fairtopk {

/// Output of one top-down search: the most-general biased patterns
/// (Res) and the biased patterns encountered that are subsumed by a
/// member of Res (DRes), which the incremental algorithms reuse.
using TopDownOutcome = engine::SearchOutcome;

/// Runs Algorithm 1 at a single `k`. Visited-node counts are added to
/// `stats` when provided; `num_threads` follows
/// DetectionConfig::num_threads (results are identical for any value).
template <typename BoundFn>
TopDownOutcome TopDownSearch(const BitmapIndex& index, int size_threshold,
                             int k, const BoundFn& lower_bound,
                             DetectionStats* stats, int num_threads = 1) {
  engine::SearchParams params{size_threshold, static_cast<size_t>(k),
                              num_threads};
  return engine::MostGeneralBelow(index, params, lower_bound, stats);
}

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_TOPDOWN_H_
