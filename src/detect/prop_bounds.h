// PROPBOUNDS (Algorithm 3): optimized detection under proportional
// representation bounds. Unlike the global case, the per-pattern bound
// alpha * s_D(p) * k / |D| grows with k, so a pattern left untouched by
// the newly admitted tuple can still become biased. The algorithm
// therefore maintains, per visited non-biased pattern, the minimal
// future k at which it would become biased if its top-k count stayed
// fixed (the k-tilde of Section IV-C) and stores it in a bucketed
// schedule K. Each iteration then touches only
//   (1) patterns satisfied by the newly admitted tuple (selective
//       top-down descent),
//   (2) patterns whose k-tilde fires at this k, and
//   (3) the deferred set DRes (biased patterns subsumed by a reported
//       ancestor), which is reconciled exactly as in Algorithm 3,
//       line 6.
// Because counts only grow, a stored k-tilde is always a lower bound on
// the true transition rank: stale entries fire early, are re-checked
// against fresh counts, and re-registered — never missed.
#ifndef FAIRTOPK_DETECT_PROP_BOUNDS_H_
#define FAIRTOPK_DETECT_PROP_BOUNDS_H_

#include "detect/bounds.h"
#include "detect/detection_result.h"
#include "detect/engine/result_sink.h"

namespace fairtopk {

/// Optimized detection of groups with biased proportional
/// representation (Problem 3.2, lower bounds), streamed per k.
/// Produces the same per-k results as DetectPropIterTD while visiting
/// fewer pattern nodes.
Status DetectPropBoundsStream(const DetectionInput& input,
                              const PropBoundSpec& bounds,
                              const DetectionConfig& config,
                              ResultSink& sink);

/// Materializing wrapper over DetectPropBoundsStream.
Result<DetectionResult> DetectPropBounds(const DetectionInput& input,
                                         const PropBoundSpec& bounds,
                                         const DetectionConfig& config);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_PROP_BOUNDS_H_
