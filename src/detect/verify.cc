#include "detect/verify.h"

namespace fairtopk {

namespace {

Status ValidateGroup(const DetectionInput& input, const Pattern& group,
                     const DetectionConfig& config) {
  if (group.num_attributes() != input.space().num_attributes()) {
    return Status::InvalidArgument(
        "group pattern does not match the pattern space");
  }
  DetectionConfig check = config;
  check.size_threshold = 1;
  return input.ValidateConfig(check);
}

}  // namespace

Result<FairnessReport> VerifyGlobalFairness(const DetectionInput& input,
                                            const Pattern& group,
                                            const GlobalBoundSpec& bounds,
                                            const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(ValidateGroup(input, group, config));
  FairnessReport report;
  report.group = group;
  report.size_in_d = input.index().PatternCount(group);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    const size_t count =
        input.index().TopKCount(group, static_cast<size_t>(k));
    FairnessViolation v;
    v.k = k;
    v.count = count;
    v.lower = bounds.lower.At(k);
    v.upper = bounds.upper.At(k);
    v.below_lower = static_cast<double>(count) < v.lower;
    v.above_upper = static_cast<double>(count) > v.upper;
    if (v.below_lower || v.above_upper) {
      report.violations.push_back(v);
    }
  }
  return report;
}

Result<FairnessReport> VerifyPropFairness(const DetectionInput& input,
                                          const Pattern& group,
                                          const PropBoundSpec& bounds,
                                          const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(ValidateGroup(input, group, config));
  if (bounds.alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  FairnessReport report;
  report.group = group;
  report.size_in_d = input.index().PatternCount(group);
  const size_t n = input.num_rows();
  for (int k = config.k_min; k <= config.k_max; ++k) {
    const size_t count =
        input.index().TopKCount(group, static_cast<size_t>(k));
    FairnessViolation v;
    v.k = k;
    v.count = count;
    v.lower =
        bounds.LowerAt(static_cast<int>(report.size_in_d), k, n);
    v.upper =
        bounds.UpperAt(static_cast<int>(report.size_in_d), k, n);
    v.below_lower = static_cast<double>(count) < v.lower;
    v.above_upper = static_cast<double>(count) > v.upper;
    if (v.below_lower || v.above_upper) {
      report.violations.push_back(v);
    }
  }
  return report;
}

}  // namespace fairtopk
