#include "detect/variants.h"

#include <functional>

#include "common/timer.h"
#include "pattern/result_set.h"
#include "pattern/search_tree.h"

namespace fairtopk {

namespace {

/// Predicate deciding whether a (size, count) pair violates at `k`.
using ViolationFn = std::function<bool(size_t size_d, size_t top_k, int k)>;

/// Enumerates every substantial pattern (size >= threshold; prune is
/// anti-monotone) and reports violators under the chosen semantics.
void EnumerateAndFilter(const BitmapIndex& index, int size_threshold, int k,
                        const ViolationFn& violates,
                        ReportingSemantics semantics,
                        std::vector<Pattern>& out, DetectionStats* stats) {
  MostGeneralResultSet most_general;
  MostSpecificResultSet most_specific;
  const PatternSpace& space = index.space();
  std::vector<Pattern> stack;
  AppendChildren(Pattern::Empty(space.num_attributes()), space, stack);
  while (!stack.empty()) {
    Pattern p = std::move(stack.back());
    stack.pop_back();
    if (stats != nullptr) ++stats->nodes_visited;
    const size_t size_d = index.PatternCount(p);
    if (size_d < static_cast<size_t>(size_threshold)) continue;
    const size_t top_k = index.TopKCount(p, static_cast<size_t>(k));
    if (violates(size_d, top_k, k)) {
      if (semantics == ReportingSemantics::kMostGeneral) {
        most_general.Update(p);
      } else {
        most_specific.Update(p);
      }
    }
    AppendChildren(p, space, stack);
  }
  out = semantics == ReportingSemantics::kMostGeneral
            ? most_general.Sorted()
            : most_specific.Sorted();
}

Result<DetectionResult> RunVariant(const DetectionInput& input,
                                   const DetectionConfig& config,
                                   const ViolationFn& violates,
                                   ReportingSemantics semantics) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  WallTimer timer;
  DetectionResult result(config.k_min, config.k_max);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    EnumerateAndFilter(input.index(), config.size_threshold, k, violates,
                       semantics, result.MutableAtK(k), &result.stats());
  }
  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

Result<DetectionResult> DetectGlobalVariant(const DetectionInput& input,
                                            const GlobalBoundSpec& bounds,
                                            const DetectionConfig& config,
                                            ViolationSide side,
                                            ReportingSemantics semantics) {
  ViolationFn violates;
  if (side == ViolationSide::kBelowLower) {
    violates = [&bounds](size_t, size_t top_k, int k) {
      return static_cast<double>(top_k) < bounds.lower.At(k);
    };
  } else {
    violates = [&bounds](size_t, size_t top_k, int k) {
      return static_cast<double>(top_k) > bounds.upper.At(k);
    };
  }
  return RunVariant(input, config, violates, semantics);
}

Result<DetectionResult> DetectPropVariant(const DetectionInput& input,
                                          const PropBoundSpec& bounds,
                                          const DetectionConfig& config,
                                          ViolationSide side,
                                          ReportingSemantics semantics) {
  if (side == ViolationSide::kBelowLower && bounds.alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  if (side == ViolationSide::kAboveUpper && bounds.beta <= bounds.alpha) {
    return Status::InvalidArgument("beta must exceed alpha");
  }
  const size_t n = input.num_rows();
  ViolationFn violates;
  if (side == ViolationSide::kBelowLower) {
    violates = [&bounds, n](size_t size_d, size_t top_k, int k) {
      return static_cast<double>(top_k) <
             bounds.LowerAt(static_cast<int>(size_d), k, n);
    };
  } else {
    violates = [&bounds, n](size_t size_d, size_t top_k, int k) {
      return static_cast<double>(top_k) >
             bounds.UpperAt(static_cast<int>(size_d), k, n);
    };
  }
  return RunVariant(input, config, violates, semantics);
}

}  // namespace fairtopk
