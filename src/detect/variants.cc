#include "detect/variants.h"

#include "common/timer.h"
#include "detect/engine/search_driver.h"
#include "pattern/result_set.h"

namespace fairtopk {

namespace {

// Per-node violation tests, inlined into the engine's hot loop (one
// instantiation per policy — no type-erased dispatch). The proportional
// policies evaluate through PropBoundSpec::LowerAt/UpperAt so boundary
// cases classify exactly as in the optimized algorithms and the oracle.

struct BelowGlobal {
  double bound;
  bool operator()(size_t, size_t top_k) const {
    return static_cast<double>(top_k) < bound;
  }
};

struct AboveGlobal {
  double bound;
  bool operator()(size_t, size_t top_k) const {
    return static_cast<double>(top_k) > bound;
  }
};

struct BelowProp {
  const PropBoundSpec* bounds;
  int k;
  size_t n;
  bool operator()(size_t size_d, size_t top_k) const {
    return static_cast<double>(top_k) <
           bounds->LowerAt(static_cast<int>(size_d), k, n);
  }
};

struct AboveProp {
  const PropBoundSpec* bounds;
  int k;
  size_t n;
  bool operator()(size_t size_d, size_t top_k) const {
    return static_cast<double>(top_k) >
           bounds->UpperAt(static_cast<int>(size_d), k, n);
  }
};

/// Enumerates every substantial pattern at `k` through the engine and
/// reports violators under the chosen semantics.
template <typename ViolatesFn>
void EnumerateAtK(const DetectionInput& input, const DetectionConfig& config,
                  int k, const ViolatesFn& violates,
                  ReportingSemantics semantics, std::vector<Pattern>& out,
                  DetectionStats* stats) {
  const engine::SearchParams params{config.size_threshold,
                                    static_cast<size_t>(k),
                                    config.num_threads};
  if (semantics == ReportingSemantics::kMostGeneral) {
    out = engine::ExhaustiveViolations<MostGeneralResultSet>(
              input.index(), params, violates, stats)
              .Sorted();
  } else {
    out = engine::ExhaustiveViolations<MostSpecificResultSet>(
              input.index(), params, violates, stats)
              .Sorted();
  }
}

/// `make_violates(k)` builds the per-k violation policy.
template <typename MakeViolates>
Result<DetectionResult> RunVariant(const DetectionInput& input,
                                   const DetectionConfig& config,
                                   const MakeViolates& make_violates,
                                   ReportingSemantics semantics) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  WallTimer timer;
  DetectionResult result(config.k_min, config.k_max);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    EnumerateAtK(input, config, k, make_violates(k), semantics,
                 result.MutableAtK(k), &result.stats());
  }
  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

Result<DetectionResult> DetectGlobalVariant(const DetectionInput& input,
                                            const GlobalBoundSpec& bounds,
                                            const DetectionConfig& config,
                                            ViolationSide side,
                                            ReportingSemantics semantics) {
  if (side == ViolationSide::kBelowLower) {
    return RunVariant(
        input, config,
        [&bounds](int k) { return BelowGlobal{bounds.lower.At(k)}; },
        semantics);
  }
  return RunVariant(
      input, config,
      [&bounds](int k) { return AboveGlobal{bounds.upper.At(k)}; },
      semantics);
}

Result<DetectionResult> DetectPropVariant(const DetectionInput& input,
                                          const PropBoundSpec& bounds,
                                          const DetectionConfig& config,
                                          ViolationSide side,
                                          ReportingSemantics semantics) {
  if (side == ViolationSide::kBelowLower && bounds.alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  if (side == ViolationSide::kAboveUpper && bounds.beta <= bounds.alpha) {
    return Status::InvalidArgument("beta must exceed alpha");
  }
  const size_t n = input.num_rows();
  if (side == ViolationSide::kBelowLower) {
    return RunVariant(
        input, config,
        [&bounds, n](int k) { return BelowProp{&bounds, k, n}; }, semantics);
  }
  return RunVariant(
      input, config,
      [&bounds, n](int k) { return AboveProp{&bounds, k, n}; }, semantics);
}

}  // namespace fairtopk
