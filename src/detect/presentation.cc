#include "detect/presentation.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace fairtopk {

namespace {

void SortGroups(std::vector<ReportedGroup>& groups, GroupOrder order) {
  std::stable_sort(groups.begin(), groups.end(),
                   [order](const ReportedGroup& a, const ReportedGroup& b) {
                     if (order == GroupOrder::kBySizeDesc) {
                       return a.size_in_d > b.size_in_d;
                     }
                     return a.bias() > b.bias();
                   });
}

}  // namespace

std::vector<ReportedGroup> AnnotateGlobal(const DetectionResult& result,
                                          const DetectionInput& input,
                                          const GlobalBoundSpec& bounds,
                                          int k, GroupOrder order) {
  std::vector<ReportedGroup> groups;
  for (const Pattern& p : result.AtK(k)) {
    ReportedGroup g;
    g.pattern = p;
    g.size_in_d = input.index().PatternCount(p);
    g.size_in_topk = input.index().TopKCount(p, static_cast<size_t>(k));
    g.required = bounds.lower.At(k);
    groups.push_back(std::move(g));
  }
  SortGroups(groups, order);
  return groups;
}

std::vector<ReportedGroup> AnnotateProp(const DetectionResult& result,
                                        const DetectionInput& input,
                                        const PropBoundSpec& bounds, int k,
                                        GroupOrder order) {
  std::vector<ReportedGroup> groups;
  for (const Pattern& p : result.AtK(k)) {
    ReportedGroup g;
    g.pattern = p;
    g.size_in_d = input.index().PatternCount(p);
    g.size_in_topk = input.index().TopKCount(p, static_cast<size_t>(k));
    g.required = bounds.LowerAt(static_cast<int>(g.size_in_d), k,
                                input.num_rows());
    groups.push_back(std::move(g));
  }
  SortGroups(groups, order);
  return groups;
}

std::string RenderReport(const std::vector<ReportedGroup>& groups,
                         const PatternSpace& space, int k) {
  std::ostringstream out;
  out << "Groups with biased representation in the top-" << k << " ("
      << groups.size() << " group" << (groups.size() == 1 ? "" : "s")
      << ")\n";
  for (const ReportedGroup& g : groups) {
    out << "  " << g.pattern.ToString(space) << "  size=" << g.size_in_d
        << "  in-top-" << k << "=" << g.size_in_topk
        << "  required>=" << FormatDouble(g.required, 2)
        << "  bias=" << FormatDouble(g.bias(), 2) << "\n";
  }
  return out.str();
}

}  // namespace fairtopk
