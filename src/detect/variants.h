// Alternative reporting semantics (Section III, "Upper bounds" remark:
// "our solutions can be adjusted to support such problem definition
// (and other definitions such as most general for upper bound, and the
// most specific for lower bound)").
//
// A variant is a violation side (below the lower bound / above the
// upper bound) combined with reporting semantics (most general / most
// specific substantial). The canonical pairs have dedicated optimized
// algorithms (GLOBALBOUNDS/PROPBOUNDS for lower+most-general,
// DetectGlobalUpperBounds for upper+most-specific); this module covers
// the full matrix via exhaustive enumeration of substantial patterns,
// trading speed for generality.
#ifndef FAIRTOPK_DETECT_VARIANTS_H_
#define FAIRTOPK_DETECT_VARIANTS_H_

#include "detect/bounds.h"
#include "detect/detection_result.h"

namespace fairtopk {

/// Which side of the bounds a reported group violates.
enum class ViolationSide {
  kBelowLower,
  kAboveUpper,
};

/// Which extremal subset of the violating patterns is reported.
enum class ReportingSemantics {
  kMostGeneral,
  kMostSpecific,
};

/// Detects violating groups under global bounds with the requested
/// semantics. (kBelowLower, kMostGeneral) is result-equivalent to
/// DetectGlobalIterTD; (kAboveUpper, kMostSpecific) to
/// DetectGlobalUpperBounds — both are property-tested.
Result<DetectionResult> DetectGlobalVariant(const DetectionInput& input,
                                            const GlobalBoundSpec& bounds,
                                            const DetectionConfig& config,
                                            ViolationSide side,
                                            ReportingSemantics semantics);

/// Proportional analogue; kBelowLower tests against alpha, kAboveUpper
/// against beta.
Result<DetectionResult> DetectPropVariant(const DetectionInput& input,
                                          const PropBoundSpec& bounds,
                                          const DetectionConfig& config,
                                          ViolationSide side,
                                          ReportingSemantics semantics);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_VARIANTS_H_
