// Result presentation helpers (Section III: "A user-friendly interface
// would organize the output by k value and rank the groups by their
// overall size in the data or by the bias in their representation").
#ifndef FAIRTOPK_DETECT_PRESENTATION_H_
#define FAIRTOPK_DETECT_PRESENTATION_H_

#include <string>
#include <vector>

#include "detect/bounds.h"
#include "detect/detection_result.h"

namespace fairtopk {

/// A reported group annotated with the quantities an analyst reads.
struct ReportedGroup {
  Pattern pattern;
  size_t size_in_d = 0;
  size_t size_in_topk = 0;
  /// The bound the group violated at this k.
  double required = 0.0;
  /// required - size_in_topk (positive for under-representation).
  double bias() const { return required - static_cast<double>(size_in_topk); }
};

/// Ordering for reported groups.
enum class GroupOrder {
  kBySizeDesc,  ///< largest groups first
  kByBiasDesc,  ///< most biased groups first
};

/// Annotates the patterns reported at `k` under global bounds and
/// sorts them by `order`.
std::vector<ReportedGroup> AnnotateGlobal(const DetectionResult& result,
                                          const DetectionInput& input,
                                          const GlobalBoundSpec& bounds,
                                          int k, GroupOrder order);

/// Annotates the patterns reported at `k` under proportional bounds and
/// sorts them by `order`.
std::vector<ReportedGroup> AnnotateProp(const DetectionResult& result,
                                        const DetectionInput& input,
                                        const PropBoundSpec& bounds, int k,
                                        GroupOrder order);

/// Renders an annotated report as an aligned text table.
std::string RenderReport(const std::vector<ReportedGroup>& groups,
                         const PatternSpace& space, int k);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_PRESENTATION_H_
