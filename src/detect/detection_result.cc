#include "detect/detection_result.h"

#include <algorithm>

namespace fairtopk {

std::vector<Pattern> DetectionResult::AllDistinct() const {
  std::vector<Pattern> all;
  for (const auto& patterns : per_k_) {
    all.insert(all.end(), patterns.begin(), patterns.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

size_t DetectionResult::MaxResultSize() const {
  size_t max_size = 0;
  for (const auto& patterns : per_k_) {
    max_size = std::max(max_size, patterns.size());
  }
  return max_size;
}

Result<DetectionInput> DetectionInput::Prepare(
    const Table& table, const Ranker& ranker,
    const std::vector<std::string>& pattern_attributes) {
  FAIRTOPK_ASSIGN_OR_RETURN(std::vector<uint32_t> ranking,
                            ranker.Rank(table));
  return PrepareWithRanking(table, std::move(ranking), pattern_attributes);
}

Result<DetectionInput> DetectionInput::PrepareWithRanking(
    const Table& table, std::vector<uint32_t> ranking,
    const std::vector<std::string>& pattern_attributes) {
  FAIRTOPK_RETURN_IF_ERROR(ValidateRanking(ranking, table.num_rows()));
  Result<PatternSpace> space =
      pattern_attributes.empty()
          ? PatternSpace::CreateAllCategorical(table.schema())
          : PatternSpace::Create(table.schema(), pattern_attributes);
  if (!space.ok()) return space.status();
  FAIRTOPK_ASSIGN_OR_RETURN(BitmapIndex index,
                            BitmapIndex::Build(table, *space, ranking));
  return DetectionInput(std::move(index), std::move(ranking));
}

Status DetectionInput::UpdateRanking(const Table& table,
                                     std::vector<uint32_t> new_ranking,
                                     double rebuild_threshold,
                                     MaintenanceOutcome* outcome) {
  const size_t n = new_ranking.size();
  MaintenanceOutcome local;
  size_t lo = 0;
  const size_t shared = std::min(ranking_.size(), n);
  while (lo < shared && ranking_[lo] == new_ranking[lo]) ++lo;
  if (lo == n && n == ranking_.size()) {
    if (outcome != nullptr) *outcome = local;
    return Status::OK();
  }
  local.window = n - lo;
  // The decision weighs the positions that actually changed, not the
  // window span: scattered local moves leave most positions inside the
  // window pointwise identical, and patching skips those for one
  // row-id compare each.
  size_t changed = n - shared;
  for (size_t pos = lo; pos < shared; ++pos) {
    changed += ranking_[pos] != new_ranking[pos] ? 1 : 0;
  }
  if (static_cast<double>(changed) >
      rebuild_threshold * static_cast<double>(n)) {
    FAIRTOPK_ASSIGN_OR_RETURN(
        BitmapIndex rebuilt,
        BitmapIndex::Build(table, index_.space(), new_ranking));
    index_ = std::move(rebuilt);
    local.kind = Maintenance::kRebuilt;
  } else {
    FAIRTOPK_RETURN_IF_ERROR(index_.ApplyRanking(
        table, new_ranking, &local.patched_positions));
    local.kind = Maintenance::kPatched;
  }
  ranking_ = std::move(new_ranking);
  if (outcome != nullptr) *outcome = local;
  return Status::OK();
}

Status DetectionInput::ValidateConfig(const DetectionConfig& config) const {
  if (config.k_min < 1) {
    return Status::InvalidArgument("k_min must be at least 1");
  }
  if (config.k_max < config.k_min) {
    return Status::InvalidArgument("k_max must be >= k_min");
  }
  if (static_cast<size_t>(config.k_max) > num_rows()) {
    return Status::InvalidArgument(
        "k_max " + std::to_string(config.k_max) + " exceeds dataset size " +
        std::to_string(num_rows()));
  }
  if (config.size_threshold < 1) {
    return Status::InvalidArgument("size threshold must be positive");
  }
  if (config.num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = hardware concurrency)");
  }
  return Status::OK();
}

}  // namespace fairtopk
