#include "detect/detection_result.h"

#include <algorithm>

namespace fairtopk {

std::vector<Pattern> DetectionResult::AllDistinct() const {
  std::vector<Pattern> all;
  for (const auto& patterns : per_k_) {
    all.insert(all.end(), patterns.begin(), patterns.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

size_t DetectionResult::MaxResultSize() const {
  size_t max_size = 0;
  for (const auto& patterns : per_k_) {
    max_size = std::max(max_size, patterns.size());
  }
  return max_size;
}

Result<DetectionInput> DetectionInput::Prepare(
    const Table& table, const Ranker& ranker,
    const std::vector<std::string>& pattern_attributes) {
  FAIRTOPK_ASSIGN_OR_RETURN(std::vector<uint32_t> ranking,
                            ranker.Rank(table));
  return PrepareWithRanking(table, std::move(ranking), pattern_attributes);
}

Result<DetectionInput> DetectionInput::PrepareWithRanking(
    const Table& table, std::vector<uint32_t> ranking,
    const std::vector<std::string>& pattern_attributes) {
  FAIRTOPK_RETURN_IF_ERROR(ValidateRanking(ranking, table.num_rows()));
  Result<PatternSpace> space =
      pattern_attributes.empty()
          ? PatternSpace::CreateAllCategorical(table.schema())
          : PatternSpace::Create(table.schema(), pattern_attributes);
  if (!space.ok()) return space.status();
  FAIRTOPK_ASSIGN_OR_RETURN(BitmapIndex index,
                            BitmapIndex::Build(table, *space, ranking));
  return DetectionInput(std::move(index), std::move(ranking));
}

Status DetectionInput::ValidateConfig(const DetectionConfig& config) const {
  if (config.k_min < 1) {
    return Status::InvalidArgument("k_min must be at least 1");
  }
  if (config.k_max < config.k_min) {
    return Status::InvalidArgument("k_max must be >= k_min");
  }
  if (static_cast<size_t>(config.k_max) > num_rows()) {
    return Status::InvalidArgument(
        "k_max " + std::to_string(config.k_max) + " exceeds dataset size " +
        std::to_string(num_rows()));
  }
  if (config.size_threshold < 1) {
    return Status::InvalidArgument("size threshold must be positive");
  }
  if (config.num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0 (0 = hardware concurrency)");
  }
  return Status::OK();
}

}  // namespace fairtopk
