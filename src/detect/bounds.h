// Fairness-bound specifications for the two problem definitions.
//
// Problem 3.1 (global representation bounds): per-k lower bounds L_k
// (and optional upper bounds U_k) applying to every pattern uniformly.
// Problem 3.2 (proportional representation): per-pattern bounds
// α·s_D(p)·k/|D| (lower) and β·s_D(p)·k/|D| (upper).
#ifndef FAIRTOPK_DETECT_BOUNDS_H_
#define FAIRTOPK_DETECT_BOUNDS_H_

#include <limits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fairtopk {

/// A step function over k: value of the highest step whose start does
/// not exceed k. Used for the L_k staircases of Section VI-A (e.g.
/// L = 10 for 10 <= k < 20, 20 for 20 <= k < 30, ...).
class StepFunction {
 public:
  /// Constant function.
  static StepFunction Constant(double value);

  /// Builds a step function from (start_k, value) pairs. Fails unless
  /// starts are strictly increasing and at least one step is given.
  /// For k below the first start, the first value applies.
  static Result<StepFunction> FromSteps(
      std::vector<std::pair<int, double>> steps);

  /// Value at `k`.
  double At(int k) const;

  /// True iff the function never decreases with k (the assumption of
  /// Section IV-B, footnote 3).
  bool IsNonDecreasing() const;

  /// True iff At(k) == At(k-1) — i.e. no step boundary at k.
  bool SameAsPrevious(int k) const { return At(k) == At(k - 1); }

  /// The (start_k, value) steps, ascending by start. Exposed so the
  /// serving layer can serialize bounds into cache keys and JSON
  /// responses.
  const std::vector<std::pair<int, double>>& steps() const { return steps_; }

 private:
  std::vector<std::pair<int, double>> steps_;
};

/// Bounds for the global-representation problem (Problem 3.1).
struct GlobalBoundSpec {
  StepFunction lower = StepFunction::Constant(0.0);
  /// Defaults to +infinity (lower-bound-only detection, the focus of
  /// Section IV).
  StepFunction upper =
      StepFunction::Constant(std::numeric_limits<double>::infinity());

  /// Paper default for Section VI-A: L = 10/20/30/40 on [10,20), [20,30),
  /// [30,40), [40,50); beyond 50 the staircase keeps climbing by 10
  /// every 10 ranks so larger k ranges (Figures 8-9) stay meaningful.
  static GlobalBoundSpec PaperDefault(int k_max);

  /// Lower staircase L_k = max(1, fraction * start) with steps every 10
  /// ranks across [k_min, k_max] — the `--lower` semantics shared by
  /// fairtopk_audit and fairtopk_serve.
  static Result<GlobalBoundSpec> FractionStaircase(double fraction, int k_min,
                                                   int k_max);
};

/// Bounds for the proportional-representation problem (Problem 3.2).
struct PropBoundSpec {
  /// Lower multiplier: biased when s_Rk(p) < alpha * s_D(p) * k / |D|.
  double alpha = 0.8;
  /// Upper multiplier (beta > alpha); infinity disables the upper test.
  double beta = std::numeric_limits<double>::infinity();

  /// The proportional lower bound for a pattern of size `size_d` at `k`
  /// in a dataset of `n` tuples.
  double LowerAt(int size_d, int k, size_t n) const {
    return alpha * static_cast<double>(size_d) * static_cast<double>(k) /
           static_cast<double>(n);
  }

  /// The proportional upper bound (infinity when disabled).
  double UpperAt(int size_d, int k, size_t n) const {
    return beta * static_cast<double>(size_d) * static_cast<double>(k) /
           static_cast<double>(n);
  }
};

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_BOUNDS_H_
