#include "detect/itertd.h"

#include "common/timer.h"
#include "detect/topdown.h"

namespace fairtopk {

Result<DetectionResult> DetectGlobalIterTD(const DetectionInput& input,
                                           const GlobalBoundSpec& bounds,
                                           const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  WallTimer timer;
  DetectionResult result(config.k_min, config.k_max);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    const double lower = bounds.lower.At(k);
    TopDownOutcome outcome = TopDownSearch(
        input.index(), config.size_threshold, k,
        [lower](size_t) { return lower; }, &result.stats(),
        config.num_threads);
    result.MutableAtK(k) = outcome.result.Sorted();
  }
  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

Result<DetectionResult> DetectPropIterTD(const DetectionInput& input,
                                         const PropBoundSpec& bounds,
                                         const DetectionConfig& config) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  if (bounds.alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  WallTimer timer;
  const size_t n = input.num_rows();
  DetectionResult result(config.k_min, config.k_max);
  for (int k = config.k_min; k <= config.k_max; ++k) {
    // Evaluate the bound through PropBoundSpec::LowerAt so every
    // algorithm (and test oracle) shares one floating-point evaluation
    // order; boundary cases like bound == count would otherwise be
    // classified inconsistently.
    TopDownOutcome outcome = TopDownSearch(
        input.index(), config.size_threshold, k,
        [&bounds, k, n](size_t size_d) {
          return bounds.LowerAt(static_cast<int>(size_d), k, n);
        },
        &result.stats(), config.num_threads);
    result.MutableAtK(k) = outcome.result.Sorted();
  }
  result.stats().seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace fairtopk
