#include "detect/itertd.h"

#include <utility>

#include "detect/topdown.h"

namespace fairtopk {

Status DetectGlobalIterTDStream(const DetectionInput& input,
                                const GlobalBoundSpec& bounds,
                                const DetectionConfig& config,
                                ResultSink& sink) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  return engine::StreamPerK(
      config, sink, [&](int k, DetectionStats& stats) {
        const double lower = bounds.lower.At(k);
        TopDownOutcome outcome = TopDownSearch(
            input.index(), config.size_threshold, k,
            [lower](size_t) { return lower; }, &stats, config.num_threads);
        return outcome.result.Sorted();
      });
}

Result<DetectionResult> DetectGlobalIterTD(const DetectionInput& input,
                                           const GlobalBoundSpec& bounds,
                                           const DetectionConfig& config) {
  return MaterializeStream(input, config, [&](ResultSink& sink) {
    return DetectGlobalIterTDStream(input, bounds, config, sink);
  });
}

Status DetectPropIterTDStream(const DetectionInput& input,
                              const PropBoundSpec& bounds,
                              const DetectionConfig& config,
                              ResultSink& sink) {
  FAIRTOPK_RETURN_IF_ERROR(input.ValidateConfig(config));
  if (bounds.alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  const size_t n = input.num_rows();
  return engine::StreamPerK(
      config, sink, [&](int k, DetectionStats& stats) {
        // Evaluate the bound through PropBoundSpec::LowerAt so every
        // algorithm (and test oracle) shares one floating-point
        // evaluation order; boundary cases like bound == count would
        // otherwise be classified inconsistently.
        TopDownOutcome outcome = TopDownSearch(
            input.index(), config.size_threshold, k,
            [&bounds, k, n](size_t size_d) {
              return bounds.LowerAt(static_cast<int>(size_d), k, n);
            },
            &stats, config.num_threads);
        return outcome.result.Sorted();
      });
}

Result<DetectionResult> DetectPropIterTD(const DetectionInput& input,
                                         const PropBoundSpec& bounds,
                                         const DetectionConfig& config) {
  return MaterializeStream(input, config, [&](ResultSink& sink) {
    return DetectPropIterTDStream(input, bounds, config, sink);
  });
}

}  // namespace fairtopk
