// Fairness verification for KNOWN protected groups — the "simple task"
// the paper contrasts its detection problem against ("Given the
// protected groups, confirming algorithmic fairness is a simple
// task"). Verifies the Celis et al. [10] bounded-representation
// condition and the Yang & Stoyanovich [36] proportional condition for
// a given group across a k range.
#ifndef FAIRTOPK_DETECT_VERIFY_H_
#define FAIRTOPK_DETECT_VERIFY_H_

#include <vector>

#include "detect/bounds.h"
#include "detect/detection_result.h"

namespace fairtopk {

/// One k at which the group's representation leaves the bounds.
struct FairnessViolation {
  int k = 0;
  size_t count = 0;
  double lower = 0.0;
  double upper = 0.0;
  bool below_lower = false;
  bool above_upper = false;
};

/// Verification outcome for one group over [k_min, k_max].
struct FairnessReport {
  Pattern group;
  size_t size_in_d = 0;
  std::vector<FairnessViolation> violations;

  /// True iff the representation stayed within bounds at every k.
  bool fair() const { return violations.empty(); }
};

/// Checks the group's top-k count against L_k/U_k for every k in
/// [config.k_min, config.k_max] (size_threshold is not applied: the
/// group is explicitly given). The group pattern must match the
/// input's pattern space.
Result<FairnessReport> VerifyGlobalFairness(const DetectionInput& input,
                                            const Pattern& group,
                                            const GlobalBoundSpec& bounds,
                                            const DetectionConfig& config);

/// Checks the group's top-k count against the proportional band
/// [alpha, beta] * s_D(group) * k / |D| for every k in the range.
Result<FairnessReport> VerifyPropFairness(const DetectionInput& input,
                                          const Pattern& group,
                                          const PropBoundSpec& bounds,
                                          const DetectionConfig& config);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_VERIFY_H_
