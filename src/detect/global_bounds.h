// GLOBALBOUNDS (Algorithm 2): optimized detection under global lower
// bounds. While the bound staircase is flat, the top-k and top-(k+1)
// prefixes differ by a single tuple, so only patterns that tuple
// satisfies can change status (Proposition 4.3); everything else is
// carried over. When the staircase steps up, a fresh top-down search is
// issued, as in the paper.
#ifndef FAIRTOPK_DETECT_GLOBAL_BOUNDS_H_
#define FAIRTOPK_DETECT_GLOBAL_BOUNDS_H_

#include "detect/bounds.h"
#include "detect/detection_result.h"
#include "detect/engine/result_sink.h"

namespace fairtopk {

/// Optimized detection of groups violating global lower bounds
/// (Problem 3.1, lower bounds), streamed per k. Produces the same
/// per-k results as DetectGlobalIterTD while visiting fewer pattern
/// nodes.
Status DetectGlobalBoundsStream(const DetectionInput& input,
                                const GlobalBoundSpec& bounds,
                                const DetectionConfig& config,
                                ResultSink& sink);

/// Materializing wrapper over DetectGlobalBoundsStream.
Result<DetectionResult> DetectGlobalBounds(const DetectionInput& input,
                                           const GlobalBoundSpec& bounds,
                                           const DetectionConfig& config);

}  // namespace fairtopk

#endif  // FAIRTOPK_DETECT_GLOBAL_BOUNDS_H_
