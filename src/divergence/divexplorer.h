// Reimplementation of the divergence-based comparator of Pastor et al.
// ([27]/[28], "DivExplorer"), which Section VI-D compares against.
//
// Every tuple gets an outcome o(t) — for ranking, o(t) = 1 iff t is in
// the top-k. A subgroup's outcome o(G) is the mean over its tuples, and
// its divergence is o(G) - o(D). The method enumerates ALL subgroups
// with support >= s (frequent-pattern mining over the same pattern
// language), reporting them ranked by divergence — unlike this paper's
// algorithms it performs no most-general filtering and considers a
// single k.
#ifndef FAIRTOPK_DIVERGENCE_DIVEXPLORER_H_
#define FAIRTOPK_DIVERGENCE_DIVEXPLORER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "index/bitmap_index.h"
#include "pattern/pattern.h"

namespace fairtopk {

/// One subgroup with its divergence.
struct DivergentGroup {
  Pattern pattern;
  size_t size = 0;
  double support = 0.0;
  /// Mean outcome of the subgroup (fraction of its tuples in the top-k).
  double outcome = 0.0;
  /// outcome(G) - outcome(D).
  double divergence = 0.0;
  /// Welch t-statistic of the group-vs-dataset outcome difference
  /// (Bernoulli outcomes), as DivExplorer reports alongside the
  /// divergence to flag significance. 0 when either variance is 0.
  double t_statistic = 0.0;
};

/// Options for FindDivergentGroups.
struct DivExplorerOptions {
  /// Minimum support (fraction of |D|); the paper's case study uses
  /// 0.13 to match a size threshold of 50 on 395 tuples.
  double min_support = 0.13;
  /// The single k defining the outcome function.
  int k = 10;
};

/// Enumerates every pattern with support >= min_support and computes
/// its divergence w.r.t. the top-k outcome. Results are sorted by
/// divergence magnitude descending (ties: lexicographic pattern order).
Result<std::vector<DivergentGroup>> FindDivergentGroups(
    const BitmapIndex& index, const DivExplorerOptions& options);

/// 1-based position of `pattern` in `groups` (as sorted by
/// FindDivergentGroups), or 0 when absent. Mirrors the paper's "the
/// pattern {sex=M} was ranked at 17 according to its divergence".
size_t DivergenceRankOf(const std::vector<DivergentGroup>& groups,
                        const Pattern& pattern);

}  // namespace fairtopk

#endif  // FAIRTOPK_DIVERGENCE_DIVEXPLORER_H_
