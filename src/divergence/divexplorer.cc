#include "divergence/divexplorer.h"

#include <algorithm>
#include <cmath>

#include "pattern/search_tree.h"

namespace fairtopk {

Result<std::vector<DivergentGroup>> FindDivergentGroups(
    const BitmapIndex& index, const DivExplorerOptions& options) {
  if (options.min_support <= 0.0 || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (options.k < 1 || static_cast<size_t>(options.k) > index.num_rows()) {
    return Status::InvalidArgument("k outside [1, |D|]");
  }
  const PatternSpace& space = index.space();
  const double n = static_cast<double>(index.num_rows());
  const double overall_outcome = static_cast<double>(options.k) / n;
  const size_t min_count = static_cast<size_t>(
      std::ceil(options.min_support * n));

  std::vector<DivergentGroup> out;
  std::vector<Pattern> stack;
  AppendChildren(Pattern::Empty(space.num_attributes()), space, stack);
  while (!stack.empty()) {
    Pattern p = std::move(stack.back());
    stack.pop_back();
    const size_t size = index.PatternCount(p);
    if (size < min_count) continue;  // support is anti-monotone
    const size_t top_k =
        index.TopKCount(p, static_cast<size_t>(options.k));
    DivergentGroup group;
    group.pattern = p;
    group.size = size;
    group.support = static_cast<double>(size) / n;
    group.outcome = static_cast<double>(top_k) / static_cast<double>(size);
    group.divergence = group.outcome - overall_outcome;
    // Welch t-statistic over Bernoulli outcomes: variance o(1-o).
    const double var_g = group.outcome * (1.0 - group.outcome);
    const double var_d = overall_outcome * (1.0 - overall_outcome);
    const double se2 =
        var_g / static_cast<double>(size) + var_d / n;
    group.t_statistic = se2 > 0.0 ? group.divergence / std::sqrt(se2) : 0.0;
    out.push_back(std::move(group));
    AppendChildren(p, space, stack);
  }

  std::sort(out.begin(), out.end(),
            [](const DivergentGroup& a, const DivergentGroup& b) {
              const double da = std::fabs(a.divergence);
              const double db = std::fabs(b.divergence);
              if (da != db) return da > db;
              return a.pattern < b.pattern;
            });
  return out;
}

size_t DivergenceRankOf(const std::vector<DivergentGroup>& groups,
                        const Pattern& pattern) {
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].pattern == pattern) return i + 1;
  }
  return 0;
}

}  // namespace fairtopk
