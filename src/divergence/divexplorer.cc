#include "divergence/divexplorer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "detect/engine/search_driver.h"

namespace fairtopk {

Result<std::vector<DivergentGroup>> FindDivergentGroups(
    const BitmapIndex& index, const DivExplorerOptions& options) {
  if (options.min_support <= 0.0 || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (options.k < 1 || static_cast<size_t>(options.k) > index.num_rows()) {
    return Status::InvalidArgument("k outside [1, |D|]");
  }
  const double n = static_cast<double>(index.num_rows());
  const double overall_outcome = static_cast<double>(options.k) / n;
  const size_t min_count =
      static_cast<size_t>(std::ceil(options.min_support * n));

  std::vector<DivergentGroup> out;
  // Support pruning is anti-monotone, so the engine's size threshold
  // implements it; the visitor scores every substantial pattern and
  // always descends.
  auto score = [&](const Pattern& p, size_t size, size_t top_k) {
    DivergentGroup group;
    group.pattern = p;
    group.size = size;
    group.support = static_cast<double>(size) / n;
    group.outcome = static_cast<double>(top_k) / static_cast<double>(size);
    group.divergence = group.outcome - overall_outcome;
    // Welch t-statistic over Bernoulli outcomes: variance o(1-o).
    const double var_g = group.outcome * (1.0 - group.outcome);
    const double var_d = overall_outcome * (1.0 - overall_outcome);
    const double se2 = var_g / static_cast<double>(size) + var_d / n;
    group.t_statistic = se2 > 0.0 ? group.divergence / std::sqrt(se2) : 0.0;
    out.push_back(std::move(group));
    return true;
  };
  const int threshold =
      min_count > static_cast<size_t>(std::numeric_limits<int>::max())
          ? std::numeric_limits<int>::max()
          : static_cast<int>(min_count);
  const engine::SearchParams params{threshold,
                                    static_cast<size_t>(options.k), 1};
  engine::SequentialTopDown(index, params, score, nullptr);

  std::sort(out.begin(), out.end(),
            [](const DivergentGroup& a, const DivergentGroup& b) {
              const double da = std::fabs(a.divergence);
              const double db = std::fabs(b.divergence);
              if (da != db) return da > db;
              return a.pattern < b.pattern;
            });
  return out;
}

size_t DivergenceRankOf(const std::vector<DivergentGroup>& groups,
                        const Pattern& pattern) {
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].pattern == pattern) return i + 1;
  }
  return 0;
}

}  // namespace fairtopk
