#include "datagen/hardness.h"

#include <numeric>

namespace fairtopk {

Result<Table> HardnessTable(int n) {
  if (n < 2 || n % 2 != 0) {
    return Status::InvalidArgument(
        "the hardness construction needs an even n >= 2");
  }
  Schema schema;
  for (int i = 1; i <= n; ++i) {
    FAIRTOPK_RETURN_IF_ERROR(
        schema.AddCategorical("A" + std::to_string(i), {"0", "1"}));
  }
  FAIRTOPK_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(schema)));
  std::vector<Cell> row(static_cast<size_t>(n));
  for (int t = 0; t < n + 1; ++t) {
    for (int a = 0; a < n; ++a) {
      row[static_cast<size_t>(a)] =
          Cell::Code(t < n && a == t ? int16_t{1} : int16_t{0});
    }
    FAIRTOPK_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

std::vector<uint32_t> HardnessRanking(int n) {
  std::vector<uint32_t> ranking(static_cast<size_t>(n) + 1);
  std::iota(ranking.begin(), ranking.end(), 0);
  return ranking;
}

uint64_t HardnessExpectedCount(int n) {
  // C(n, n/2) via the multiplicative formula (exact for the small n the
  // demonstration uses).
  uint64_t result = 1;
  const uint64_t half = static_cast<uint64_t>(n) / 2;
  for (uint64_t i = 1; i <= half; ++i) {
    result = result * (static_cast<uint64_t>(n) - half + i) / i;
  }
  return result;
}

}  // namespace fairtopk
