// The paper's running example (Figure 1): 16 students from two
// Portuguese schools, ranked by grade with ties broken by fewer past
// failures. Used by the quickstart example and as a ground-truth
// fixture in tests (Examples 2.3-2.5, 4.6 and 4.9 of the paper are
// checked against it verbatim).
#ifndef FAIRTOPK_DATAGEN_RUNNING_EXAMPLE_H_
#define FAIRTOPK_DATAGEN_RUNNING_EXAMPLE_H_

#include <memory>

#include "common/status.h"
#include "ranking/ranker.h"
#include "relation/table.h"

namespace fairtopk {

/// Builds the Figure 1 table with categorical attributes Gender, School,
/// Address, Failures and numeric attribute Grade. Row order matches the
/// figure's numbering (row 0 is student #1).
Result<Table> RunningExampleTable();

/// The ranker of the running example: grade descending, past failures
/// ascending on ties. Applied to RunningExampleTable() it reproduces the
/// Rank column of Figure 1 exactly.
std::unique_ptr<Ranker> RunningExampleRanker();

}  // namespace fairtopk

#endif  // FAIRTOPK_DATAGEN_RUNNING_EXAMPLE_H_
