#include "datagen/german_like.h"

#include "datagen/synthetic.h"
#include "ranking/precomputed_ranker.h"

namespace fairtopk {

namespace {
constexpr size_t kNumRows = 1000;
}  // namespace

std::vector<std::string> GermanPatternAttributes() {
  return {"status_checking", "duration_cat",     "credit_history",
          "purpose",         "credit_amount_cat", "savings",
          "employment",      "installment_rate", "personal_status",
          "other_debtors",   "residence_length", "property",
          "age_cat",         "other_installment", "housing",
          "existing_credits", "job",             "num_liable",
          "telephone",       "foreign_worker"};
}

Result<Table> GermanLikeTable(uint64_t seed) {
  std::vector<SyntheticAttribute> attrs = {
      // Status of existing checking account: <0 DM, 0<=..<200 DM,
      // >=200 DM, none. The 0<=..<200 DM group drives the Section VI-C
      // case study.
      {"status_checking",
       4,
       {0.27, 0.27, 0.06, 0.40},
       {"<0 DM", "0<=...<200 DM", ">=200 DM", "no account"}},
      {"duration_cat",
       4,
       {0.33, 0.34, 0.22, 0.11},
       {"<=12mo", "13-24mo", "25-36mo", ">36mo"}},
      {"credit_history", 5, {0.04, 0.05, 0.53, 0.09, 0.29}},
      {"purpose", 5, {0.28, 0.23, 0.21, 0.18, 0.10}},
      {"credit_amount_cat",
       4,
       {0.37, 0.30, 0.20, 0.13},
       {"<2000", "2000-5000", "5000-10000", ">10000"}},
      {"savings", 5, {0.60, 0.10, 0.06, 0.05, 0.19}},
      {"employment", 5, {0.06, 0.17, 0.34, 0.17, 0.26}},
      {"installment_rate", 4, {0.14, 0.23, 0.16, 0.47}},
      {"personal_status",
       4,
       {0.05, 0.31, 0.55, 0.09},
       {"M-div/sep", "F-div/sep/mar", "M-single", "M-mar/wid"}},
      {"other_debtors", 3, {0.91, 0.04, 0.05}},
      {"residence_length",
       4,
       {0.13, 0.31, 0.15, 0.41},
       {"<1y", "1-2y", "2-3y", ">=4y"}},
      {"property", 4, {0.28, 0.23, 0.33, 0.16}},
      {"age_cat", 4, {0.26, 0.38, 0.22, 0.14}, {"<26", "26-35", "36-50", ">50"}},
      {"other_installment", 3, {0.14, 0.05, 0.81}},
      {"housing", 3, {0.18, 0.71, 0.11}, {"rent", "own", "free"}},
      {"existing_credits", 4, {0.63, 0.33, 0.03, 0.01}},
      {"job", 4, {0.02, 0.20, 0.63, 0.15}},
      {"num_liable", 2, {0.84, 0.16}},
      {"telephone", 2, {0.60, 0.40}, {"none", "yes"}},
      {"foreign_worker", 2, {0.96, 0.04}, {"yes", "no"}},
  };

  // Hidden creditworthiness model (the ranker never sees this): driven
  // chiefly by residence length, loan duration, credit amount and
  // installment rate, with smaller demographic effects.
  SyntheticScore score;
  score.name = "creditworthiness";
  score.noise_stddev = 0.8;
  score.effects = {
      {"residence_length", {-1.8, -0.4, 0.8, 2.2}},
      {"duration_cat", {2.0, 0.7, -0.8, -2.4}},
      {"credit_amount_cat", {1.6, 0.5, -0.7, -2.0}},
      {"installment_rate", {1.2, 0.4, -0.3, -1.1}},
      {"status_checking", {-1.0, -0.6, 0.8, 0.9}},
      {"savings", {-0.5, -0.1, 0.3, 0.6, 0.4}},
      {"age_cat", {-0.4, 0.1, 0.3, 0.2}},
  };

  return GenerateSynthetic(attrs, {score}, kNumRows, seed);
}

std::unique_ptr<Ranker> GermanRanker() {
  return std::make_unique<PrecomputedScoreRanker>("creditworthiness");
}

}  // namespace fairtopk
