#include "datagen/student_like.h"

#include <algorithm>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "ranking/precomputed_ranker.h"

namespace fairtopk {

namespace {
constexpr size_t kNumRows = 395;
}  // namespace

std::vector<std::string> StudentPatternAttributes() {
  return {"school",     "sex",        "age_cat",   "address",  "famsize",
          "Pstatus",    "Medu",       "Fedu",      "Mjob",     "Fjob",
          "reason",     "guardian",   "traveltime", "studytime", "failures",
          "schoolsup",  "famsup",     "paid",      "activities", "nursery",
          "higher",     "internet",   "romantic",  "famrel",   "freetime",
          "goout",      "Dalc",       "Walc",      "health",   "absences_cat",
          "G1_cat",     "G2_cat"};
}

Result<Table> StudentLikeTable(uint64_t seed) {
  std::vector<SyntheticAttribute> attrs = {
      {"school", 2, {0.88, 0.12}, {"GP", "MS"}},
      {"sex", 2, {0.53, 0.47}, {"F", "M"}},
      {"age_cat", 4, {0.26, 0.40, 0.25, 0.09}, {"15-16", "17", "18", "19+"}},
      {"address", 2, {0.78, 0.22}, {"U", "R"}},
      {"famsize", 2, {0.71, 0.29}, {"GT3", "LE3"}},
      {"Pstatus", 2, {0.90, 0.10}, {"T", "A"}},
      // Mother's education: none/primary(4th grade)/5th-9th/secondary/
      // higher. The primary-education group drives the Section VI-C case
      // study.
      {"Medu",
       5,
       {0.01, 0.15, 0.26, 0.25, 0.33},
       {"none", "primary(4th)", "5th-9th", "secondary", "higher"}},
      {"Fedu",
       5,
       {0.01, 0.21, 0.29, 0.25, 0.24},
       {"none", "primary(4th)", "5th-9th", "secondary", "higher"}},
      {"Mjob",
       5,
       {0.15, 0.09, 0.26, 0.37, 0.13},
       {"at_home", "health", "services", "other", "teacher"}},
      {"Fjob",
       5,
       {0.05, 0.04, 0.28, 0.55, 0.08},
       {"at_home", "health", "services", "other", "teacher"}},
      {"reason",
       4,
       {0.37, 0.28, 0.25, 0.10},
       {"course", "home", "reputation", "other"}},
      {"guardian", 3, {0.69, 0.23, 0.08}, {"mother", "father", "other"}},
      {"traveltime", 4, {0.65, 0.27, 0.06, 0.02}},
      {"studytime", 4, {0.27, 0.50, 0.16, 0.07}},
      {"failures", 4, {0.79, 0.13, 0.04, 0.04}},
      {"schoolsup", 2, {0.87, 0.13}},
      {"famsup", 2, {0.39, 0.61}},
      {"paid", 2, {0.54, 0.46}},
      {"activities", 2, {0.49, 0.51}},
      {"nursery", 2, {0.21, 0.79}},
      {"higher", 2, {0.05, 0.95}},
      {"internet", 2, {0.17, 0.83}},
      {"romantic", 2, {0.67, 0.33}},
      {"famrel", 5, {0.02, 0.05, 0.17, 0.49, 0.27}},
      {"freetime", 5, {0.05, 0.16, 0.40, 0.29, 0.10}},
      {"goout", 5, {0.06, 0.26, 0.33, 0.22, 0.13}},
      {"Dalc", 5, {0.70, 0.19, 0.07, 0.02, 0.02}},
      {"Walc", 5, {0.38, 0.22, 0.20, 0.13, 0.07}},
      {"health", 5, {0.12, 0.11, 0.23, 0.17, 0.37}},
      {"absences_cat", 4, {0.45, 0.30, 0.15, 0.10}},
  };

  // Final grade G3 on the 0-20 scale, correlated with socio-economic
  // attributes: mother's education has the strongest effect (so the
  // Medu=primary group lands low in the ranking), then study time,
  // failures, school support, and the school itself.
  SyntheticScore g3;
  g3.name = "G3";
  g3.noise_stddev = 2.4;
  g3.effects = {
      {"Medu", {7.0, 7.6, 9.6, 11.0, 12.6}},
      {"studytime", {-1.2, 0.0, 0.9, 1.6}},
      {"failures", {1.2, -1.6, -2.8, -3.8}},
      {"schoolsup", {0.4, -1.0}},
      {"school", {0.3, -0.5}},
      {"higher", {-1.8, 0.3}},
  };

  FAIRTOPK_ASSIGN_OR_RETURN(
      Table base, GenerateSynthetic(attrs, {g3}, kNumRows, seed));

  // Clamp G3 to the exam scale and derive the bucketized period grades
  // G1_cat/G2_cat as noisy shadows of G3 — the correlation Section
  // VI-C's Shapley analysis surfaces.
  Schema schema;
  for (const auto& a : base.schema().attributes()) {
    if (a.type == AttributeType::kCategorical) {
      FAIRTOPK_RETURN_IF_ERROR(schema.AddCategorical(a.name, a.labels));
    }
  }
  FAIRTOPK_RETURN_IF_ERROR(
      schema.AddCategorical("G1_cat", {"[0,5)", "[5,10)", "[10,15)",
                                       "[15,20]"}));
  FAIRTOPK_RETURN_IF_ERROR(
      schema.AddCategorical("G2_cat", {"[0,5)", "[5,10)", "[10,15)",
                                       "[15,20]"}));
  FAIRTOPK_RETURN_IF_ERROR(schema.AddNumeric("G3"));
  FAIRTOPK_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(schema)));

  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const size_t g3_col = *base.schema().IndexOf("G3");
  const size_t num_cat = base.schema().CategoricalIndices().size();
  std::vector<Cell> row(num_cat + 3);
  for (size_t r = 0; r < base.num_rows(); ++r) {
    for (size_t c = 0; c < num_cat; ++c) {
      row[c] = Cell::Code(base.CodeAt(r, c));
    }
    double grade = std::clamp(base.ValueAt(r, g3_col), 0.0, 20.0);
    auto bucket = [](double g) {
      if (g < 5.0) return int16_t{0};
      if (g < 10.0) return int16_t{1};
      if (g < 15.0) return int16_t{2};
      return int16_t{3};
    };
    double g1 = std::clamp(grade + rng.Gaussian() * 1.5, 0.0, 20.0);
    double g2 = std::clamp(grade + rng.Gaussian() * 1.0, 0.0, 20.0);
    row[num_cat] = Cell::Code(bucket(g1));
    row[num_cat + 1] = Cell::Code(bucket(g2));
    row[num_cat + 2] = Cell::Value(grade);
    FAIRTOPK_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

std::unique_ptr<Ranker> StudentRanker() {
  return std::make_unique<PrecomputedScoreRanker>("G3");
}

}  // namespace fairtopk
