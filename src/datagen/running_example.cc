#include "datagen/running_example.h"

#include "ranking/attribute_ranker.h"

namespace fairtopk {

Result<Table> RunningExampleTable() {
  Schema schema;
  FAIRTOPK_RETURN_IF_ERROR(schema.AddCategorical("Gender", {"F", "M"}));
  FAIRTOPK_RETURN_IF_ERROR(schema.AddCategorical("School", {"MS", "GP"}));
  FAIRTOPK_RETURN_IF_ERROR(schema.AddCategorical("Address", {"R", "U"}));
  FAIRTOPK_RETURN_IF_ERROR(
      schema.AddCategorical("Failures", {"0", "1", "2"}));
  FAIRTOPK_RETURN_IF_ERROR(schema.AddNumeric("Grade"));
  FAIRTOPK_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(schema)));

  struct Row {
    const char* gender;
    const char* school;
    const char* address;
    int16_t failures;
    double grade;
  };
  // Figure 1, rows 1-16.
  const Row rows[] = {
      {"F", "MS", "R", 1, 11}, {"M", "MS", "R", 1, 15},
      {"M", "GP", "U", 1, 8},  {"M", "GP", "U", 2, 4},
      {"M", "MS", "R", 0, 19}, {"F", "MS", "U", 1, 4},
      {"F", "GP", "R", 1, 7},  {"M", "GP", "R", 1, 6},
      {"F", "MS", "R", 0, 14}, {"F", "MS", "R", 2, 7},
      {"M", "MS", "R", 2, 13}, {"F", "GP", "U", 0, 20},
      {"F", "GP", "U", 2, 12}, {"M", "MS", "U", 1, 13},
      {"F", "GP", "U", 1, 5},  {"M", "GP", "U", 0, 9},
  };
  for (const Row& r : rows) {
    const int16_t gender = r.gender[0] == 'F' ? 0 : 1;
    const int16_t school = r.school[0] == 'M' ? 0 : 1;
    const int16_t address = r.address[0] == 'R' ? 0 : 1;
    FAIRTOPK_RETURN_IF_ERROR(table.AppendRow(
        {Cell::Code(gender), Cell::Code(school), Cell::Code(address),
         Cell::Code(r.failures), Cell::Value(r.grade)}));
  }
  return table;
}

std::unique_ptr<Ranker> RunningExampleRanker() {
  return std::make_unique<AttributeRanker>(std::vector<SortKey>{
      {"Grade", /*ascending=*/false}, {"Failures", /*ascending=*/true}});
}

}  // namespace fairtopk
