// Generic synthetic dataset generator.
//
// The paper evaluates on three real datasets that are not
// redistributable with this repository. The generators in this module
// replicate what the detection algorithms actually observe: tuple
// count, number of categorical pattern attributes, per-attribute
// cardinalities, value skew, and score attributes correlated with
// demographic attributes (so that biased groups genuinely exist in the
// top-k). See DESIGN.md, "Substitutions".
#ifndef FAIRTOPK_DATAGEN_SYNTHETIC_H_
#define FAIRTOPK_DATAGEN_SYNTHETIC_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "relation/table.h"

namespace fairtopk {

/// One categorical attribute of a synthetic dataset.
struct SyntheticAttribute {
  SyntheticAttribute() : SyntheticAttribute(std::string()) {}
  SyntheticAttribute(std::string name, int cardinality = 2,
                     std::vector<double> weights = {},
                     std::vector<std::string> labels = {})
      : name(std::move(name)),
        cardinality(cardinality),
        weights(std::move(weights)),
        labels(std::move(labels)) {}

  std::string name;
  int cardinality;
  /// Unnormalized sampling weights per value; uniform when empty.
  std::vector<double> weights;
  /// Human-readable value labels; "v0".."vN-1" when empty. When given,
  /// must have exactly `cardinality` entries.
  std::vector<std::string> labels;
};

/// Additive effect of one categorical attribute on a score column.
struct ScoreEffect {
  std::string attribute;
  /// effect[code] is added to the score when the tuple carries `code`.
  std::vector<double> effect;
};

/// A numeric score column derived from the categorical attributes plus
/// Gaussian noise: score = sum of effects + N(0, noise_stddev).
struct SyntheticScore {
  std::string name = "score";
  double noise_stddev = 1.0;
  std::vector<ScoreEffect> effects;
};

/// Samples `num_rows` tuples over `attributes` (independently per
/// attribute, by weight) and appends one numeric column per entry of
/// `scores`. Deterministic in `seed`.
Result<Table> GenerateSynthetic(const std::vector<SyntheticAttribute>& attributes,
                                const std::vector<SyntheticScore>& scores,
                                size_t num_rows, uint64_t seed);

/// Convenience: `count` attributes named prefix0..prefixN-1, all with
/// the same cardinality and uniform weights.
std::vector<SyntheticAttribute> UniformAttributes(const std::string& prefix,
                                                  size_t count,
                                                  int cardinality);

}  // namespace fairtopk

#endif  // FAIRTOPK_DATAGEN_SYNTHETIC_H_
