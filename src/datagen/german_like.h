// German-Credit-shaped synthetic dataset (1,000 tuples, 20 categorical
// attributes + a hidden numeric creditworthiness score), replicating
// the Statlog dataset as ranked by Yang & Stoyanovich's
// creditworthiness scores in Section VI-A. The scoring model is kept
// "unknown" to the pipeline (the ranker just reads the score column),
// matching the paper's black-box treatment; the hidden model weights
// residence length, duration, credit amount and installment rate — the
// attributes Section VI-C's Shapley analysis surfaces.
#ifndef FAIRTOPK_DATAGEN_GERMAN_LIKE_H_
#define FAIRTOPK_DATAGEN_GERMAN_LIKE_H_

#include <memory>

#include "common/status.h"
#include "ranking/ranker.h"
#include "relation/table.h"

namespace fairtopk {

/// Generates the German-Credit-shaped dataset. Deterministic in `seed`.
Result<Table> GermanLikeTable(uint64_t seed = 19941000);

/// Ranks descending by the precomputed creditworthiness score.
std::unique_ptr<Ranker> GermanRanker();

/// Names of the 20 categorical pattern attributes, in pattern order.
std::vector<std::string> GermanPatternAttributes();

}  // namespace fairtopk

#endif  // FAIRTOPK_DATAGEN_GERMAN_LIKE_H_
