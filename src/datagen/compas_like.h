// COMPAS-shaped synthetic dataset (6,889 tuples, 16 categorical pattern
// attributes, 7 numeric scoring attributes), replicating the recidivism
// dataset used in Section VI-A. Scoring attributes are correlated with
// demographic attributes so that demographic groups are genuinely
// over/under-represented in the top-k, and ranking follows the paper's
// normalized-sum scheme with `age` reversed.
#ifndef FAIRTOPK_DATAGEN_COMPAS_LIKE_H_
#define FAIRTOPK_DATAGEN_COMPAS_LIKE_H_

#include <memory>

#include "common/status.h"
#include "ranking/ranker.h"
#include "relation/table.h"

namespace fairtopk {

/// Generates the COMPAS-shaped dataset. Deterministic in `seed`.
Result<Table> CompasLikeTable(uint64_t seed = 20230107);

/// The Section VI-A ranker: descending by the sum of min-max normalized
/// scoring attributes, with age contributing reversed.
std::unique_ptr<Ranker> CompasRanker();

/// Names of the 16 categorical pattern attributes, in pattern order.
std::vector<std::string> CompasPatternAttributes();

}  // namespace fairtopk

#endif  // FAIRTOPK_DATAGEN_COMPAS_LIKE_H_
