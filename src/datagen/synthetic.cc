#include "datagen/synthetic.h"

namespace fairtopk {

Result<Table> GenerateSynthetic(
    const std::vector<SyntheticAttribute>& attributes,
    const std::vector<SyntheticScore>& scores, size_t num_rows,
    uint64_t seed) {
  if (attributes.empty()) {
    return Status::InvalidArgument("synthetic dataset needs attributes");
  }
  if (num_rows == 0) {
    return Status::InvalidArgument("synthetic dataset needs rows");
  }
  Schema schema;
  for (const auto& attr : attributes) {
    if (attr.cardinality < 2) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' needs cardinality >= 2");
    }
    if (!attr.weights.empty() &&
        attr.weights.size() != static_cast<size_t>(attr.cardinality)) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' has mismatched weights");
    }
    if (!attr.labels.empty() &&
        attr.labels.size() != static_cast<size_t>(attr.cardinality)) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' has mismatched labels");
    }
    std::vector<std::string> labels = attr.labels;
    if (labels.empty()) {
      for (int v = 0; v < attr.cardinality; ++v) {
        labels.push_back("v" + std::to_string(v));
      }
    }
    FAIRTOPK_RETURN_IF_ERROR(schema.AddCategorical(attr.name, labels));
  }
  for (const auto& score : scores) {
    FAIRTOPK_RETURN_IF_ERROR(schema.AddNumeric(score.name));
  }

  // Resolve score effects to attribute positions up front.
  struct ResolvedEffect {
    size_t attribute_pos;
    const std::vector<double>* effect;
  };
  std::vector<std::vector<ResolvedEffect>> resolved(scores.size());
  for (size_t s = 0; s < scores.size(); ++s) {
    for (const auto& e : scores[s].effects) {
      size_t pos = attributes.size();
      for (size_t a = 0; a < attributes.size(); ++a) {
        if (attributes[a].name == e.attribute) {
          pos = a;
          break;
        }
      }
      if (pos == attributes.size()) {
        return Status::NotFound("score effect references unknown attribute '" +
                                e.attribute + "'");
      }
      if (e.effect.size() !=
          static_cast<size_t>(attributes[pos].cardinality)) {
        return Status::InvalidArgument(
            "score effect on '" + e.attribute +
            "' must list one value per domain element");
      }
      resolved[s].push_back({pos, &e.effect});
    }
  }

  FAIRTOPK_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(schema)));
  Rng rng(seed);
  std::vector<Cell> row(attributes.size() + scores.size());
  std::vector<int16_t> codes(attributes.size());
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < attributes.size(); ++a) {
      const auto& attr = attributes[a];
      int16_t code;
      if (attr.weights.empty()) {
        code = static_cast<int16_t>(
            rng.UniformUint64(static_cast<uint64_t>(attr.cardinality)));
      } else {
        code = static_cast<int16_t>(rng.Categorical(attr.weights));
      }
      codes[a] = code;
      row[a] = Cell::Code(code);
    }
    for (size_t s = 0; s < scores.size(); ++s) {
      double value = rng.Gaussian() * scores[s].noise_stddev;
      for (const auto& e : resolved[s]) {
        value += (*e.effect)[static_cast<size_t>(codes[e.attribute_pos])];
      }
      row[attributes.size() + s] = Cell::Value(value);
    }
    FAIRTOPK_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

std::vector<SyntheticAttribute> UniformAttributes(const std::string& prefix,
                                                  size_t count,
                                                  int cardinality) {
  std::vector<SyntheticAttribute> out;
  for (size_t i = 0; i < count; ++i) {
    out.push_back({prefix + std::to_string(i), cardinality, {}});
  }
  return out;
}

}  // namespace fairtopk
