#include "datagen/compas_like.h"

#include "datagen/synthetic.h"
#include "ranking/score_ranker.h"

namespace fairtopk {

namespace {
constexpr size_t kNumRows = 6889;
}  // namespace

std::vector<std::string> CompasPatternAttributes() {
  return {"sex",
          "age_cat",
          "race",
          "juv_fel_cat",
          "juv_misd_cat",
          "juv_other_cat",
          "priors_cat",
          "charge_degree",
          "two_year_recid",
          "decile_score_cat",
          "v_decile_score_cat",
          "score_text",
          "custody_cat",
          "marriage_cat",
          "supervision_cat",
          "arrest_cat"};
}

Result<Table> CompasLikeTable(uint64_t seed) {
  // Categorical attributes: name, cardinality, sampling skew. Domain
  // sizes follow the real dataset after the 3-4 bin bucketization of
  // Section VI-A.
  std::vector<SyntheticAttribute> attrs = {
      {"sex", 2, {0.81, 0.19}, {"Male", "Female"}},
      {"age_cat", 3, {0.22, 0.57, 0.21}, {"<35", "35-45", ">45"}},
      {"race",
       6,
       {0.51, 0.34, 0.08, 0.04, 0.02, 0.01},
       {"African-American", "Caucasian", "Hispanic", "Other", "Asian",
        "Native American"}},
      {"juv_fel_cat", 3, {0.94, 0.04, 0.02}},
      {"juv_misd_cat", 3, {0.93, 0.05, 0.02}},
      {"juv_other_cat", 3, {0.90, 0.07, 0.03}},
      {"priors_cat", 4, {0.34, 0.30, 0.20, 0.16}},
      {"charge_degree", 2, {0.64, 0.36}, {"F", "M"}},
      {"two_year_recid", 2, {0.55, 0.45}, {"no", "yes"}},
      {"decile_score_cat", 4, {0.40, 0.25, 0.20, 0.15}},
      {"v_decile_score_cat", 4, {0.45, 0.27, 0.17, 0.11}},
      {"score_text", 3, {0.55, 0.26, 0.19}, {"Low", "Medium", "High"}},
      {"custody_cat", 3, {0.50, 0.30, 0.20}},
      {"marriage_cat", 4, {0.44, 0.31, 0.15, 0.10}},
      {"supervision_cat", 3, {0.60, 0.25, 0.15}},
      {"arrest_cat", 4, {0.35, 0.30, 0.20, 0.15}},
  };

  // Numeric scoring attributes (the seven of Section VI-A), correlated
  // with demographics. Larger effect -> higher raw value.
  std::vector<SyntheticScore> scores;
  {
    SyntheticScore s;
    s.name = "days_from_compas";
    s.noise_stddev = 6.0;
    s.effects = {{"custody_cat", {2.0, 10.0, 25.0}},
                 {"charge_degree", {4.0, 12.0}}};
    scores.push_back(s);
  }
  {
    SyntheticScore s;
    s.name = "juv_other_count";
    s.noise_stddev = 0.4;
    s.effects = {{"juv_other_cat", {0.0, 1.0, 3.0}},
                 {"age_cat", {1.0, 0.3, 0.0}}};
    scores.push_back(s);
  }
  {
    SyntheticScore s;
    s.name = "days_b_screening_arrest";
    s.noise_stddev = 6.0;
    s.effects = {{"arrest_cat", {0.0, 6.0, 14.0, 28.0}}};
    scores.push_back(s);
  }
  {
    SyntheticScore s;
    s.name = "start";
    s.noise_stddev = 10.0;
    s.effects = {{"supervision_cat", {5.0, 25.0, 60.0}},
                 {"two_year_recid", {0.0, 18.0}}};
    scores.push_back(s);
  }
  {
    SyntheticScore s;
    s.name = "end";
    s.noise_stddev = 80.0;
    s.effects = {{"two_year_recid", {500.0, 120.0}},
                 {"score_text", {300.0, 120.0, 30.0}},
                 {"age_cat", {60.0, 140.0, 260.0}}};
    scores.push_back(s);
  }
  {
    SyntheticScore s;
    s.name = "age";
    s.noise_stddev = 3.0;
    s.effects = {{"age_cat", {22.0, 33.0, 52.0}},
                 {"marriage_cat", {28.0, 34.0, 40.0, 44.0}}};
    scores.push_back(s);
  }
  {
    SyntheticScore s;
    s.name = "priors_count";
    s.noise_stddev = 1.2;
    s.effects = {{"priors_cat", {0.0, 2.0, 6.0, 14.0}},
                 {"race", {2.4, 3.4, 1.5, 1.0, 0.8, 0.8}},
                 {"sex", {2.2, 1.2}}};
    scores.push_back(s);
  }

  return GenerateSynthetic(attrs, scores, kNumRows, seed);
}

std::unique_ptr<Ranker> CompasRanker() {
  // Section VI-A: normalized scoring attributes summed; higher values
  // mean higher scores except for age, which is reversed.
  return std::make_unique<ScoreRanker>(std::vector<ScoreTerm>{
      {"days_from_compas", 1.0, true},
      {"juv_other_count", 1.0, true},
      {"days_b_screening_arrest", 1.0, true},
      {"start", 1.0, true},
      {"end", 1.0, true},
      {"age", 1.0, false},
      {"priors_count", 1.0, true},
  });
}

}  // namespace fairtopk
