// Student-Performance-shaped synthetic dataset (395 tuples, 32
// categorical attributes + the numeric final grade G3), replicating the
// UCI Math fragment used in Section VI-A. G3 is correlated with the
// mother's-education, study-time and failures attributes, and the
// period grades G1/G2 are bucketized shadows of G3 — reproducing the
// correlations the Shapley analysis of Section VI-C relies on.
#ifndef FAIRTOPK_DATAGEN_STUDENT_LIKE_H_
#define FAIRTOPK_DATAGEN_STUDENT_LIKE_H_

#include <memory>

#include "common/status.h"
#include "ranking/ranker.h"
#include "relation/table.h"

namespace fairtopk {

/// Generates the Student-shaped dataset. Deterministic in `seed`.
Result<Table> StudentLikeTable(uint64_t seed = 20052006);

/// The Section VI-A ranker for this dataset: descending by G3.
std::unique_ptr<Ranker> StudentRanker();

/// Names of the 32 categorical pattern attributes, in pattern order.
std::vector<std::string> StudentPatternAttributes();

}  // namespace fairtopk

#endif  // FAIRTOPK_DATAGEN_STUDENT_LIKE_H_
