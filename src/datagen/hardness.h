// The Theorem 3.3 hardness construction: n binary attributes and n+1
// tuples where tuple i carries 1 exactly in attribute i (tuple n+1 is
// all zeros), ranked in row order. With k = n and L_k = n/2 + 1 (or
// alpha = (n+3)/(n+4)), every pattern assigning 0 to exactly n/2
// attributes is a most general biased pattern, so the result set has
// C(n, n/2) > sqrt(2)^n members. Used to exhibit the exponential worst
// case empirically.
#ifndef FAIRTOPK_DATAGEN_HARDNESS_H_
#define FAIRTOPK_DATAGEN_HARDNESS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "relation/table.h"

namespace fairtopk {

/// Builds the construction for `n` attributes (n even, n >= 2).
/// The identity permutation over rows is the ranking of Theorem 3.3.
Result<Table> HardnessTable(int n);

/// The ranking used by the construction (row order).
std::vector<uint32_t> HardnessRanking(int n);

/// C(n, n/2): the number of most general biased patterns the
/// construction induces.
uint64_t HardnessExpectedCount(int n);

}  // namespace fairtopk

#endif  // FAIRTOPK_DATAGEN_HARDNESS_H_
