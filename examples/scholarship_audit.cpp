// Scholarship audit: the paper's motivating scenario. A committee
// ranks students by final grade to award scholarships; this audit
// detects student groups with biased representation in every top-k
// shortlist and explains WHY the flagged group ranks low, using the
// Section V Shapley pipeline.
//
//   build/examples/scholarship_audit
#include <cstdio>

#include "datagen/student_like.h"
#include "detect/global_bounds.h"
#include "detect/presentation.h"
#include "explain/group_explainer.h"

using namespace fairtopk;

int main() {
  Result<Table> table = StudentLikeTable();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  auto ranker = StudentRanker();
  std::printf("Auditing a scholarship shortlist over %zu students, "
              "ranker: %s\n\n",
              table->num_rows(), ranker->Describe().c_str());

  Result<DetectionInput> input =
      DetectionInput::Prepare(*table, *ranker, StudentPatternAttributes());
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  // Paper defaults (Section VI-A): tau_s = 50, k in [10, 49], lower
  // bounds 10/20/30/40 staircase.
  DetectionConfig config;
  config.k_min = 10;
  config.k_max = 49;
  config.size_threshold = 50;
  GlobalBoundSpec bounds = GlobalBoundSpec::PaperDefault(config.k_max);

  Result<DetectionResult> detected =
      DetectGlobalBounds(*input, bounds, config);
  if (!detected.ok()) {
    std::fprintf(stderr, "%s\n", detected.status().ToString().c_str());
    return 1;
  }

  const int report_k = 49;
  auto groups = AnnotateGlobal(*detected, *input, bounds, report_k,
                               GroupOrder::kBySizeDesc);
  std::printf("%s\n", RenderReport(groups, input->space(), report_k).c_str());
  if (groups.empty()) {
    std::printf("no biased groups at k=%d\n", report_k);
    return 0;
  }

  // Explain the largest flagged group: train a rank-regression model,
  // aggregate per-tuple Shapley values, and compare distributions.
  auto ranking = ranker->Rank(*table);
  if (!ranking.ok()) {
    std::fprintf(stderr, "%s\n", ranking.status().ToString().c_str());
    return 1;
  }
  Result<GroupExplainer> explainer =
      GroupExplainer::Create(*table, *ranking, ExplainerOptions{});
  if (!explainer.ok()) {
    std::fprintf(stderr, "%s\n", explainer.status().ToString().c_str());
    return 1;
  }
  std::printf("rank-regression model R^2 = %.3f\n\n",
              explainer->TrainingR2());

  Result<GroupExplanation> explanation = explainer->Explain(
      groups.front().pattern, input->space(), report_k);
  if (!explanation.ok()) {
    std::fprintf(stderr, "%s\n", explanation.status().ToString().c_str());
    return 1;
  }
  std::printf("Aggregated Shapley values for %s (top 6 attributes):\n",
              groups.front().pattern.ToString(input->space()).c_str());
  for (size_t i = 0; i < explanation->effects.size() && i < 6; ++i) {
    std::printf("  %-14s %+.4f\n",
                explanation->effects[i].attribute.c_str(),
                explanation->effects[i].mean_shapley);
  }
  std::printf("\n%s",
              RenderDistribution(explanation->top_attribute_distribution)
                  .c_str());
  return 0;
}
