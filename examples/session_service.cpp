// Serving audits from a long-lived session: open one AuditSession over
// a synthetic dataset, serve typed api::AuditRequests (repeats are
// cache hits, a DetectMany batch dedupes identical queries, a
// streaming sink sees per-k results as they are finalized), absorb
// score updates and appended rows through the incremental ranking
// maintenance, and print the session's service counters — the
// programmatic twin of `tools/fairtopk_serve`.
#include <cstdio>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "service/audit_session.h"

using namespace fairtopk;

namespace {

api::AuditRequest PropRequest(int threads) {
  api::AuditRequest request;
  request.detector = "PropBounds";
  request.config.k_min = 10;
  request.config.k_max = 49;
  request.config.size_threshold = 100;
  request.config.num_threads = threads;
  PropBoundSpec bounds;
  bounds.alpha = 0.8;
  request.bounds = bounds;
  return request;
}

void PrintTopGroups(const AuditSession& session,
                    const DetectionResult& result, int k) {
  std::printf("  groups at k=%d:", k);
  for (const Pattern& p : result.AtK(k)) {
    std::printf(" %s", p.ToString(session.space()).c_str());
  }
  std::printf("%s\n", result.AtK(k).empty() ? " (none)" : "");
}

/// A streaming consumer: counts per-k batches as the detector
/// finalizes them (nothing is materialized on this side).
class ViolationCounter : public ResultSink {
 public:
  Status OnResult(int k, std::vector<Pattern> patterns) override {
    ks_seen_ += 1;
    violations_ += patterns.size();
    (void)k;
    return Status::OK();
  }
  size_t ks_seen() const { return ks_seen_; }
  size_t violations() const { return violations_; }

 private:
  size_t ks_seen_ = 0;
  size_t violations_ = 0;
};

}  // namespace

int main() {
  // A COMPAS-shaped synthetic: five ternary demographic attributes and
  // a score column that disadvantages g0=v0.
  std::vector<SyntheticAttribute> attributes =
      UniformAttributes("g", 5, 3);
  SyntheticScore score;
  score.noise_stddev = 1.0;
  score.effects.push_back({"g0", {0.0, 0.8, 1.6}});
  auto table = GenerateSynthetic(attributes, {score}, 5000, 7);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  auto session = AuditSession::Create(std::move(table).value(), "score");
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  std::printf("session over %zu rows, %zu pattern attributes\n",
              session->num_rows(), session->space().num_attributes());

  // Query 1: runs the detector. Query 2 (same parameters, different
  // thread count) is served from the cache — results are thread-count
  // invariant, so num_threads is not part of the cache key.
  auto first = session->Detect(PropRequest(/*threads=*/1));
  if (!first.ok()) {
    std::fprintf(stderr, "%s\n", first.status().ToString().c_str());
    return 1;
  }
  PrintTopGroups(*session, *first->result, 49);
  auto second = session->Detect(PropRequest(/*threads=*/4));
  if (!second.ok()) {
    std::fprintf(stderr, "%s\n", second.status().ToString().c_str());
    return 1;
  }
  std::printf("  second query cache hit: %s (ran %s)\n",
              second->cached ? "yes" : "no", second->detector->name.c_str());

  // A batch: the baseline and the optimized detector, each requested
  // twice — DetectMany runs each distinct cache key once and serves
  // the duplicates from the first run.
  api::AuditRequest baseline = PropRequest(1);
  baseline.detector = "PropIterTD";
  auto batch = session->DetectMany(
      {PropRequest(1), baseline, PropRequest(1), baseline});
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  std::printf("  batch of 4 served (%zu deduplicated)\n",
              static_cast<size_t>((*batch)[2].cached) +
                  static_cast<size_t>((*batch)[3].cached));

  // Streaming: per-k results flow through a sink as the (cached)
  // detection replays — a live run would stream identically.
  ViolationCounter counter;
  if (Status s = session->DetectStream(PropRequest(1), counter); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  streamed %zu ks, %zu violation reports\n",
              counter.ks_seen(), counter.violations());

  // Maintenance: nudge 1% of the rows, then append a fresh batch. The
  // ranking and bitmap index are maintained incrementally (suffix
  // patches) instead of being rebuilt.
  Rng rng(99);
  std::vector<ScoreUpdate> updates;
  for (int i = 0; i < 50; ++i) {
    const uint32_t row =
        static_cast<uint32_t>(rng.UniformUint64(session->num_rows()));
    updates.push_back({row, session->scores()[row] + rng.Gaussian() * 0.01});
  }
  if (Status s = session->ApplyScoreUpdates(updates); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::vector<Cell>> fresh_rows;
  for (int i = 0; i < 25; ++i) {
    std::vector<Cell> row;
    for (int a = 0; a < 5; ++a) {
      row.push_back(
          Cell::Code(static_cast<int16_t>(rng.UniformUint64(3))));
    }
    row.push_back(Cell::Value(rng.Gaussian() * 1.5));
    fresh_rows.push_back(std::move(row));
  }
  if (Status s = session->AppendRows(fresh_rows); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  auto after = session->Detect(PropRequest(/*threads=*/1));
  if (!after.ok()) {
    std::fprintf(stderr, "%s\n", after.status().ToString().c_str());
    return 1;
  }
  PrintTopGroups(*session, *after->result, 49);

  const SessionServiceStats& stats = session->service_stats();
  std::printf(
      "service stats: queries=%llu cache_hits=%llu updates=%llu "
      "appends=%llu index_patches=%llu index_rebuilds=%llu "
      "positions_patched=%llu\n",
      static_cast<unsigned long long>(stats.detect_queries),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.score_updates),
      static_cast<unsigned long long>(stats.appends),
      static_cast<unsigned long long>(stats.index_patches),
      static_cast<unsigned long long>(stats.index_rebuilds),
      static_cast<unsigned long long>(stats.positions_patched));
  return 0;
}
