// Serving audits from a long-lived session: open one AuditSession over
// a synthetic dataset, serve repeated detection queries (the second
// one is a cache hit), absorb score updates and appended rows through
// the incremental ranking maintenance, and print the session's
// service counters — the programmatic twin of `tools/fairtopk_serve`.
#include <cstdio>

#include "common/rng.h"
#include "datagen/synthetic.h"
#include "service/audit_session.h"

using namespace fairtopk;

namespace {

SessionQuery PropQuery(int threads) {
  SessionQuery query;
  query.detector = SessionDetector::kPropBounds;
  query.config.k_min = 10;
  query.config.k_max = 49;
  query.config.size_threshold = 100;
  query.config.num_threads = threads;
  query.prop_bounds.alpha = 0.8;
  return query;
}

void PrintTopGroups(const AuditSession& session,
                    const DetectionResult& result, int k) {
  std::printf("  groups at k=%d:", k);
  for (const Pattern& p : result.AtK(k)) {
    std::printf(" %s", p.ToString(session.space()).c_str());
  }
  std::printf("%s\n", result.AtK(k).empty() ? " (none)" : "");
}

}  // namespace

int main() {
  // A COMPAS-shaped synthetic: five ternary demographic attributes and
  // a score column that disadvantages g0=v0.
  std::vector<SyntheticAttribute> attributes =
      UniformAttributes("g", 5, 3);
  SyntheticScore score;
  score.noise_stddev = 1.0;
  score.effects.push_back({"g0", {0.0, 0.8, 1.6}});
  auto table = GenerateSynthetic(attributes, {score}, 5000, 7);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  auto session = AuditSession::Create(std::move(table).value(), "score");
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  std::printf("session over %zu rows, %zu pattern attributes\n",
              session->num_rows(), session->space().num_attributes());

  // Query 1: runs the detector. Query 2 (same parameters, different
  // thread count) is served from the cache — results are thread-count
  // invariant, so num_threads is not part of the cache key.
  auto first = session->Detect(PropQuery(/*threads=*/1));
  if (!first.ok()) {
    std::fprintf(stderr, "%s\n", first.status().ToString().c_str());
    return 1;
  }
  PrintTopGroups(*session, **first, 49);
  auto second = session->Detect(PropQuery(/*threads=*/4));
  if (!second.ok()) {
    std::fprintf(stderr, "%s\n", second.status().ToString().c_str());
    return 1;
  }
  std::printf("  second query cache hit: %s\n",
              second->get() == first->get() ? "yes" : "no");

  // Maintenance: nudge 1% of the rows, then append a fresh batch. The
  // ranking and bitmap index are maintained incrementally (suffix
  // patches) instead of being rebuilt.
  Rng rng(99);
  std::vector<ScoreUpdate> updates;
  for (int i = 0; i < 50; ++i) {
    const uint32_t row =
        static_cast<uint32_t>(rng.UniformUint64(session->num_rows()));
    updates.push_back({row, session->scores()[row] + rng.Gaussian() * 0.01});
  }
  if (Status s = session->ApplyScoreUpdates(updates); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::vector<Cell>> fresh_rows;
  for (int i = 0; i < 25; ++i) {
    std::vector<Cell> row;
    for (int a = 0; a < 5; ++a) {
      row.push_back(
          Cell::Code(static_cast<int16_t>(rng.UniformUint64(3))));
    }
    row.push_back(Cell::Value(rng.Gaussian() * 1.5));
    fresh_rows.push_back(std::move(row));
  }
  if (Status s = session->AppendRows(fresh_rows); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  auto after = session->Detect(PropQuery(/*threads=*/1));
  if (!after.ok()) {
    std::fprintf(stderr, "%s\n", after.status().ToString().c_str());
    return 1;
  }
  PrintTopGroups(*session, **after, 49);

  const SessionServiceStats& stats = session->service_stats();
  std::printf(
      "service stats: queries=%llu cache_hits=%llu updates=%llu "
      "appends=%llu index_patches=%llu index_rebuilds=%llu "
      "positions_patched=%llu\n",
      static_cast<unsigned long long>(stats.detect_queries),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.score_updates),
      static_cast<unsigned long long>(stats.appends),
      static_cast<unsigned long long>(stats.index_patches),
      static_cast<unsigned long long>(stats.index_rebuilds),
      static_cast<unsigned long long>(stats.positions_patched));
  return 0;
}
