// Quickstart: detect groups with biased representation on the paper's
// 16-student running example (Figure 1).
//
//   build/examples/quickstart
//
// Walks the public audit API in ~40 lines: build/load a table, rank
// it, prepare a detection input, run both fairness measures through
// typed api::AuditRequests (the detector is resolved by name from the
// registry — `capabilities` in the serving protocol lists them all),
// and print annotated reports.
#include <cstdio>

#include "api/audit.h"
#include "datagen/running_example.h"
#include "detect/presentation.h"

using namespace fairtopk;

int main() {
  // 1. The dataset: students with Gender/School/Address/Failures and a
  //    numeric Grade (swap in ReadCsvFile(...) for your own data).
  Result<Table> table = RunningExampleTable();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  // 2. The ranking algorithm (a black box to the detector): grade
  //    descending, fewer past failures first on ties.
  auto ranker = RunningExampleRanker();

  // 3. One validated bundle: ranking + pattern space + bitmap index.
  Result<DetectionInput> input = DetectionInput::Prepare(*table, *ranker);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  // 4a. Global bounds (Problem 3.1): every group of >= 4 students must
  //     place at least 2 members in every top-k, k in [4, 6]. The
  //     request carries exactly the bounds its detector consumes.
  GlobalBoundSpec global_bounds;
  global_bounds.lower = StepFunction::Constant(2.0);
  api::AuditRequest global_request;
  global_request.detector = "GlobalBounds";
  global_request.config.k_min = 4;
  global_request.config.k_max = 6;
  global_request.config.size_threshold = 4;
  global_request.bounds = global_bounds;
  Result<DetectionResult> global = api::RunAudit(*input, global_request);
  if (!global.ok()) {
    std::fprintf(stderr, "%s\n", global.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Global representation bounds (L = 2) ===\n");
  for (int k = global_request.config.k_min;
       k <= global_request.config.k_max; ++k) {
    auto groups = AnnotateGlobal(*global, *input, global_bounds, k,
                                 GroupOrder::kByBiasDesc);
    std::printf("%s", RenderReport(groups, input->space(), k).c_str());
  }

  // 4b. Proportional representation (Problem 3.2): each group's top-k
  //     share must reach 90% of its share of the dataset.
  PropBoundSpec prop_bounds;
  prop_bounds.alpha = 0.9;
  api::AuditRequest prop_request;
  prop_request.detector = "PropBounds";
  prop_request.config = global_request.config;
  prop_request.config.size_threshold = 5;
  prop_request.bounds = prop_bounds;
  Result<DetectionResult> prop = api::RunAudit(*input, prop_request);
  if (!prop.ok()) {
    std::fprintf(stderr, "%s\n", prop.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== Proportional representation (alpha = 0.9) ===\n");
  for (int k = prop_request.config.k_min; k <= prop_request.config.k_max;
       ++k) {
    auto groups = AnnotateProp(*prop, *input, prop_bounds, k,
                               GroupOrder::kByBiasDesc);
    std::printf("%s", RenderReport(groups, input->space(), k).c_str());
  }
  return 0;
}
