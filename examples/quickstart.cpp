// Quickstart: detect groups with biased representation on the paper's
// 16-student running example (Figure 1).
//
//   build/examples/quickstart
//
// Walks the full public API in ~40 lines: build/load a table, rank it,
// prepare a detection input, run both fairness measures, and print
// annotated reports.
#include <cstdio>

#include "datagen/running_example.h"
#include "detect/global_bounds.h"
#include "detect/presentation.h"
#include "detect/prop_bounds.h"

using namespace fairtopk;

int main() {
  // 1. The dataset: students with Gender/School/Address/Failures and a
  //    numeric Grade (swap in ReadCsvFile(...) for your own data).
  Result<Table> table = RunningExampleTable();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  // 2. The ranking algorithm (a black box to the detector): grade
  //    descending, fewer past failures first on ties.
  auto ranker = RunningExampleRanker();

  // 3. One validated bundle: ranking + pattern space + bitmap index.
  Result<DetectionInput> input = DetectionInput::Prepare(*table, *ranker);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  // 4a. Global bounds (Problem 3.1): every group of >= 4 students must
  //     place at least 2 members in every top-k, k in [4, 6].
  GlobalBoundSpec global_bounds;
  global_bounds.lower = StepFunction::Constant(2.0);
  DetectionConfig config;
  config.k_min = 4;
  config.k_max = 6;
  config.size_threshold = 4;
  Result<DetectionResult> global =
      DetectGlobalBounds(*input, global_bounds, config);
  if (!global.ok()) {
    std::fprintf(stderr, "%s\n", global.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Global representation bounds (L = 2) ===\n");
  for (int k = config.k_min; k <= config.k_max; ++k) {
    auto groups = AnnotateGlobal(*global, *input, global_bounds, k,
                                 GroupOrder::kByBiasDesc);
    std::printf("%s", RenderReport(groups, input->space(), k).c_str());
  }

  // 4b. Proportional representation (Problem 3.2): each group's top-k
  //     share must reach 90% of its share of the dataset.
  PropBoundSpec prop_bounds;
  prop_bounds.alpha = 0.9;
  config.size_threshold = 5;
  Result<DetectionResult> prop =
      DetectPropBounds(*input, prop_bounds, config);
  if (!prop.ok()) {
    std::fprintf(stderr, "%s\n", prop.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== Proportional representation (alpha = 0.9) ===\n");
  for (int k = config.k_min; k <= config.k_max; ++k) {
    auto groups = AnnotateProp(*prop, *input, prop_bounds, k,
                               GroupOrder::kByBiasDesc);
    std::printf("%s", RenderReport(groups, input->space(), k).c_str());
  }
  return 0;
}
