// Recidivism-ranking audit on the COMPAS-shaped dataset: runs both
// fairness measures with the optimized algorithms, reports the
// detected groups, and contrasts the output with the divergence-based
// method of Pastor et al. [27] — the Section VI-D comparison.
//
//   build/examples/recidivism_audit
#include <cstdio>

#include "datagen/compas_like.h"
#include "detect/global_bounds.h"
#include "detect/presentation.h"
#include "detect/prop_bounds.h"
#include "divergence/divexplorer.h"

using namespace fairtopk;

int main() {
  Result<Table> table = CompasLikeTable();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  auto ranker = CompasRanker();
  std::printf("Auditing a risk ranking over %zu defendants, ranker: %s\n\n",
              table->num_rows(), ranker->Describe().c_str());

  // 8 pattern attributes keep this demo snappy; pass all 16 for a full
  // audit.
  std::vector<std::string> all = CompasPatternAttributes();
  std::vector<std::string> attrs(all.begin(), all.begin() + 8);
  Result<DetectionInput> input =
      DetectionInput::Prepare(*table, *ranker, attrs);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  DetectionConfig config;
  config.k_min = 10;
  config.k_max = 49;
  config.size_threshold = 50;

  GlobalBoundSpec gbounds = GlobalBoundSpec::PaperDefault(config.k_max);
  Result<DetectionResult> global =
      DetectGlobalBounds(*input, gbounds, config);
  if (!global.ok()) {
    std::fprintf(stderr, "%s\n", global.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Global bounds (10/20/30/40 staircase) at k = 49 ===\n");
  auto g_groups = AnnotateGlobal(*global, *input, gbounds, 49,
                                 GroupOrder::kByBiasDesc);
  std::printf("%s\n", RenderReport(g_groups, input->space(), 49).c_str());

  PropBoundSpec pbounds;
  pbounds.alpha = 0.8;
  Result<DetectionResult> prop = DetectPropBounds(*input, pbounds, config);
  if (!prop.ok()) {
    std::fprintf(stderr, "%s\n", prop.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Proportional (alpha = 0.8) at k = 49 ===\n");
  auto p_groups = AnnotateProp(*prop, *input, pbounds, 49,
                               GroupOrder::kByBiasDesc);
  std::printf("%s\n", RenderReport(p_groups, input->space(), 49).c_str());

  // Comparison with the divergence method: it enumerates ALL frequent
  // subgroups and ranks them by divergence, so its output is far
  // larger and includes groups subsumed by one another.
  DivExplorerOptions div_options;
  div_options.min_support =
      50.0 / static_cast<double>(table->num_rows());
  div_options.k = 49;
  auto divergent = FindDivergentGroups(input->index(), div_options);
  if (!divergent.ok()) {
    std::fprintf(stderr, "%s\n", divergent.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Divergence method [27] at k = 49 ===\n");
  std::printf("reports %zu subgroups (vs %zu / %zu most-general above); "
              "top 5 by |divergence|:\n",
              divergent->size(), g_groups.size(), p_groups.size());
  for (size_t i = 0; i < divergent->size() && i < 5; ++i) {
    const auto& g = (*divergent)[i];
    std::printf("  %s  divergence=%+.3f support=%.3f\n",
                g.pattern.ToString(input->space()).c_str(), g.divergence,
                g.support);
  }
  return 0;
}
