// Lending audit: applicants are ranked by an opaque creditworthiness
// score (the German Credit setup of Section VI-A). This audit uses
// proportional representation — every applicant group's share of the
// top-k should track its share of the applicant pool — and also runs
// the upper-bound extension to surface OVER-represented intersectional
// groups.
//
//   build/examples/lending_audit
#include <cstdio>

#include "datagen/german_like.h"
#include "detect/presentation.h"
#include "detect/prop_bounds.h"
#include "detect/upper_bounds.h"

using namespace fairtopk;

int main() {
  Result<Table> table = GermanLikeTable();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  auto ranker = GermanRanker();
  std::printf("Auditing a loan-offer ranking over %zu applicants, "
              "ranker: %s\n\n",
              table->num_rows(), ranker->Describe().c_str());

  Result<DetectionInput> input =
      DetectionInput::Prepare(*table, *ranker, GermanPatternAttributes());
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  DetectionConfig config;
  config.k_min = 10;
  config.k_max = 49;
  config.size_threshold = 50;
  PropBoundSpec bounds;
  bounds.alpha = 0.8;  // under-representation multiplier
  bounds.beta = 1.6;   // over-representation multiplier (extension)

  Result<DetectionResult> under = DetectPropBounds(*input, bounds, config);
  if (!under.ok()) {
    std::fprintf(stderr, "%s\n", under.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Under-represented groups (alpha = %.1f) ===\n",
              bounds.alpha);
  for (int k : {10, 30, 49}) {
    auto groups =
        AnnotateProp(*under, *input, bounds, k, GroupOrder::kByBiasDesc);
    const size_t total = groups.size();
    if (groups.size() > 12) groups.resize(12);
    std::printf("%s", RenderReport(groups, input->space(), k).c_str());
    if (total > groups.size()) {
      std::printf("  ... and %zu more\n", total - groups.size());
    }
  }

  Result<DetectionResult> over =
      DetectPropUpperBounds(*input, bounds, config);
  if (!over.ok()) {
    std::fprintf(stderr, "%s\n", over.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== Over-represented groups (beta = %.1f, most specific "
              "substantial) ===\n",
              bounds.beta);
  for (int k : {10, 30, 49}) {
    const auto& groups = over->AtK(k);
    std::printf("top-%d: %zu group(s)%s\n", k, groups.size(),
                groups.size() > 10 ? ", showing 10" : "");
    for (size_t i = 0; i < groups.size() && i < 10; ++i) {
      const Pattern& p = groups[i];
      std::printf("  %s  size=%zu in-top-%d=%zu\n",
                  p.ToString(input->space()).c_str(),
                  input->index().PatternCount(p), k,
                  input->index().TopKCount(p, static_cast<size_t>(k)));
    }
  }
  return 0;
}
