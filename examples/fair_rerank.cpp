// Detect-then-repair: find groups with biased representation in a
// scholarship ranking, then produce a minimally perturbed ranking in
// which every detected group meets the bound — the mitigation loop the
// paper positions as complementary work (Section VII, [4]/[38]).
//
//   build/examples/fair_rerank
#include <cstdio>

#include "datagen/running_example.h"
#include "detect/itertd.h"
#include "detect/verify.h"
#include "mitigate/rerank.h"

using namespace fairtopk;

int main() {
  Result<Table> table = RunningExampleTable();
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  auto ranker = RunningExampleRanker();
  Result<DetectionInput> input = DetectionInput::Prepare(*table, *ranker);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  GlobalBoundSpec bounds;
  bounds.lower = StepFunction::Constant(2.0);
  DetectionConfig config;
  config.k_min = 5;
  config.k_max = 6;
  config.size_threshold = 8;

  // 1. Detect.
  Result<DetectionResult> detected =
      DetectGlobalIterTD(*input, bounds, config);
  if (!detected.ok()) {
    std::fprintf(stderr, "%s\n", detected.status().ToString().c_str());
    return 1;
  }
  std::printf("Detected groups below L=2 somewhere in k in [5, 6]:\n");
  for (const Pattern& p : detected->AllDistinct()) {
    std::printf("  %s\n", p.ToString(input->space()).c_str());
  }

  // 2. Repair: every detected group becomes a representation floor.
  auto constraints = ConstraintsFromDetection(*detected, bounds);
  Result<RepairOutcome> repair =
      RepairRanking(*input, constraints, config);
  if (!repair.ok()) {
    std::fprintf(stderr, "%s\n", repair.status().ToString().c_str());
    return 1;
  }
  std::printf("\nRepair: %zu tuple(s) moved, Kendall-tau distance %llu, "
              "feasible=%s\n",
              repair->tuples_moved,
              static_cast<unsigned long long>(repair->kendall_tau_distance),
              repair->feasible ? "yes" : "no");

  // 3. Re-verify every group on the repaired ranking.
  Result<DetectionInput> repaired =
      DetectionInput::PrepareWithRanking(*table, repair->ranking);
  if (!repaired.ok()) {
    std::fprintf(stderr, "%s\n", repaired.status().ToString().c_str());
    return 1;
  }
  std::printf("\nPost-repair verification:\n");
  for (const auto& constraint : constraints) {
    auto report =
        VerifyGlobalFairness(*repaired, constraint.group, bounds, config);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s: %s\n",
                constraint.group.ToString(input->space()).c_str(),
                report->fair() ? "fair" : "STILL BIASED");
  }

  std::printf("\nOriginal vs repaired top-6 (row ids):\n  original: ");
  for (int i = 0; i < 6; ++i) {
    std::printf("%u ", input->ranking()[static_cast<size_t>(i)] + 1);
  }
  std::printf("\n  repaired: ");
  for (int i = 0; i < 6; ++i) {
    std::printf("%u ", repair->ranking[static_cast<size_t>(i)] + 1);
  }
  std::printf("\n");
  return 0;
}
