// Concurrent clients over one shared AuditSession: the programmatic
// twin of `fairtopk_serve --workers`. Demonstrates the session's
// concurrency contract (see "Concurrency model" in README.md):
//
//  * reader threads issue detection queries concurrently under the
//    shared lock — identical in-flight queries coalesce onto one run;
//  * a writer thread applies score updates through the exclusive lock,
//    invalidating the result cache only when the permutation changes;
//  * a DetectMany batch fans its distinct members out on a dedicated
//    ThreadPool (SessionOptions::batch_executor), deduping repeats.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/synthetic.h"
#include "service/audit_session.h"

using namespace fairtopk;

namespace {

api::AuditRequest GlobalQuery(int tau) {
  api::AuditRequest request;
  request.detector = "GlobalIterTD";
  request.config.k_min = 10;
  request.config.k_max = 49;
  request.config.size_threshold = tau;
  request.bounds = GlobalBoundSpec::PaperDefault(49);
  return request;
}

}  // namespace

int main() {
  // A five-attribute synthetic ranking with a disadvantaged g0=v0.
  std::vector<SyntheticAttribute> attributes = UniformAttributes("g", 5, 3);
  SyntheticScore score;
  score.noise_stddev = 1.0;
  score.effects.push_back({"g0", {0.0, 0.8, 1.6}});
  auto table = GenerateSynthetic(attributes, {score}, 5000, 7);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  SessionOptions options;
  // Dedicated pool for DetectMany batches — deliberately separate from
  // the client threads below (pool tasks must be leaves).
  options.batch_executor = std::make_shared<ThreadPool>(2);
  auto session =
      AuditSession::Create(std::move(table).value(), "score",
                           /*ascending=*/false, options);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  std::printf("session over %zu rows, %zu pattern attributes\n",
              session->num_rows(), session->space().num_attributes());

  // Four clients hammer the session with overlapping queries while one
  // writer perturbs scores: readers share the state lock, the writer
  // excludes them while the ranking and index are patched. Duplicate
  // concurrent queries compute once (watch coalesced_hits below).
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&session, &failures, c] {
      for (int round = 0; round < 8; ++round) {
        // Clients deliberately overlap on tau so concurrent duplicates
        // exist; a round-robin offset keeps some queries distinct.
        auto response = session->Detect(GlobalQuery(100 + 50 * ((c + round) % 3)));
        if (!response.ok()) failures.fetch_add(1);
      }
    });
  }
  clients.emplace_back([&session, &failures] {
    Rng rng(99);
    for (int round = 0; round < 6; ++round) {
      std::vector<ScoreUpdate> updates;
      for (int i = 0; i < 20; ++i) {
        const uint32_t row =
            static_cast<uint32_t>(rng.UniformUint64(session->num_rows()));
        updates.push_back({row, 50.0 + rng.Gaussian() * 4.0});
      }
      if (!session->ApplyScoreUpdates(updates).ok()) failures.fetch_add(1);
      std::this_thread::yield();
    }
  });
  for (std::thread& client : clients) client.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "%d operations failed\n", failures.load());
    return 1;
  }

  // A batch with repeats: distinct members run concurrently on the
  // batch executor, repeats are deduped in-batch.
  std::vector<api::AuditRequest> batch = {GlobalQuery(100), GlobalQuery(150),
                                          GlobalQuery(200), GlobalQuery(100),
                                          GlobalQuery(150)};
  auto responses = session->DetectMany(batch);
  if (!responses.ok()) {
    std::fprintf(stderr, "%s\n", responses.status().ToString().c_str());
    return 1;
  }
  size_t deduped = 0;
  for (const api::AuditResponse& response : *responses) {
    if (response.cached) ++deduped;
  }
  std::printf("batch of %zu served, %zu deduped in-batch\n", batch.size(),
              deduped);

  const SessionServiceStats stats = session->service_stats();
  std::printf(
      "detect_queries=%llu cache_hits=%llu coalesced_hits=%llu "
      "score_updates=%llu index_patches=%llu index_rebuilds=%llu\n",
      static_cast<unsigned long long>(stats.detect_queries),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.coalesced_hits),
      static_cast<unsigned long long>(stats.score_updates),
      static_cast<unsigned long long>(stats.index_patches),
      static_cast<unsigned long long>(stats.index_rebuilds));
  return 0;
}
