#!/usr/bin/env sh
# CI entry point: header self-containment, tier-1 verify from a clean
# tree, then an ASan/UBSan pass over the unit and property suites, then
# a ThreadSanitizer pass over the detection tests (which exercise
# num_threads > 1 through the parallel-equivalence property suite).
#
#   ./ci.sh            # all stages
#   SKIP_SANITIZE=1 ./ci.sh   # skip the sanitizer stages
set -eu

JOBS="$(nproc 2>/dev/null || echo 4)"
GENERATOR=""
if command -v ninja >/dev/null 2>&1; then
  GENERATOR="-GNinja"
fi

echo "== stage 0: header self-containment =="
# Every public header must compile standalone (so api/, engine/, and
# service headers stay includable in isolation — a new public type
# cannot silently lean on a sibling's transitive includes).
CXX_BIN="${CXX:-c++}"
find src -name '*.h' | sort | xargs -P "${JOBS}" -I {} \
  "${CXX_BIN}" -std=c++20 -fsyntax-only -Isrc -x c++ {}
echo "all src headers compile standalone"

echo "== tier-1: configure + build + ctest =="
rm -rf build-ci
cmake -B build-ci -S . ${GENERATOR}
cmake --build build-ci -j "${JOBS}"
(cd build-ci && ctest --output-on-failure -j "${JOBS}")

if [ "${SKIP_SANITIZE:-0}" = "1" ]; then
  echo "== sanitize stage skipped (SKIP_SANITIZE=1) =="
  exit 0
fi

echo "== stage 2: ASan/UBSan =="
rm -rf build-ci-asan
# Benches/examples/tools are skipped; with them off, cli_test and the
# smoke tests are unregistered, so a plain ctest runs every library
# test (unit + property + integration_test) under the sanitizers.
cmake -B build-ci-asan -S . ${GENERATOR} -DFAIRTOPK_SANITIZE=ON \
  -DFAIRTOPK_BUILD_BENCHES=OFF -DFAIRTOPK_BUILD_EXAMPLES=OFF \
  -DFAIRTOPK_BUILD_TOOLS=OFF
cmake --build build-ci-asan -j "${JOBS}"
(cd build-ci-asan && ctest --output-on-failure -j "${JOBS}")

echo "== stage 3: TSan (multi-threaded detection) =="
rm -rf build-ci-tsan
# The detection suites cover the search engine's sharded parallelism;
# parallel_equivalence_test runs every algorithm with num_threads > 1,
# and the service suites (audit_session, session_equivalence) drive
# multi-threaded queries through the session layer.
cmake -B build-ci-tsan -S . ${GENERATOR} -DFAIRTOPK_SANITIZE=thread \
  -DFAIRTOPK_BUILD_BENCHES=OFF -DFAIRTOPK_BUILD_EXAMPLES=OFF \
  -DFAIRTOPK_BUILD_TOOLS=OFF
cmake --build build-ci-tsan -j "${JOBS}"
(cd build-ci-tsan && ctest --output-on-failure -j "${JOBS}" \
  -R 'parallel_equivalence|session_equivalence|audit_session|topdown|global_bounds|prop_bounds|upper_bounds|variants|pattern_cursor')

echo "== ci.sh: all green =="
