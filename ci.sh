#!/usr/bin/env sh
# CI entry point, split into named stages so the GitHub Actions matrix
# can run them as parallel jobs while one local invocation still covers
# everything:
#
#   headers   every src/**/*.h compiles standalone
#   tier1     configure + build + full ctest (the tier-1 verify), then
#             the full suite again with FAIRTOPK_KERNEL=scalar and the
#             kernel differential test once per SIMD variant
#   asan      ASan/UBSan over the unit and property suites, plus the
#             kernel differential test once per SIMD variant
#   tsan      ThreadSanitizer over every `concurrency`-labeled test
#             (ctest -L concurrency — suites opt in via the label in
#             tests/CMakeLists.txt, not by editing a regex here)
#   perf      perf smoke: pinned bench_micro subset vs the checked-in
#             baseline via tools/bench_compare.py, plus the intra-run
#             4-vs-1-worker serving throughput gate
#
#   ./ci.sh                    # headers tier1 asan tsan
#   ./ci.sh tier1              # a single stage
#   ./ci.sh tier1 perf         # any subset, in the given order
#   SKIP_SANITIZE=1 ./ci.sh    # back-compat: headers tier1 only
#
# ccache is picked up automatically when installed (the Actions jobs
# cache its directory between runs).
set -eu

JOBS="$(nproc 2>/dev/null || echo 4)"
GENERATOR=""
if command -v ninja >/dev/null 2>&1; then
  GENERATOR="-GNinja"
fi
LAUNCHER=""
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER="-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

PERF_BASELINE="${PERF_BASELINE:-BENCH_pr7.json}"
PERF_BENCHMARKS="BM_DetectGlobalIterTDSmall,BM_SessionReuseDetect/0,BM_SessionReuseDetect/1,BM_ConcurrentDetectThroughput/1/real_time,BM_ConcurrentDetectThroughput/4/real_time,BM_AndCounts/1024,BM_AssignAndCount/1024,BM_MetricsOverhead/0,BM_MetricsOverhead/1"

# Bitset kernel variants the differential test is forced through (an
# unavailable variant falls back to the automatic choice with a stderr
# note, so the loop is harmless on any hardware).
KERNEL_VARIANTS="scalar avx2 avx512 neon"

run_kernel_matrix() {
  # $1 = build dir: the kernel differential suite once per variant.
  for kernel in ${KERNEL_VARIANTS}; do
    echo "-- bitset_kernel_test under FAIRTOPK_KERNEL=${kernel}"
    (cd "$1" && FAIRTOPK_KERNEL="${kernel}" \
      ctest --output-on-failure -R '^bitset_kernel_test$')
  done
}

stage_headers() {
  echo "== stage headers: header self-containment =="
  # Every public header must compile standalone (so api/, engine/, and
  # service headers stay includable in isolation — a new public type
  # cannot silently lean on a sibling's transitive includes).
  CXX_BIN="${CXX:-c++}"
  find src -name '*.h' | sort | xargs -P "${JOBS}" -I {} \
    "${CXX_BIN}" -std=c++20 -fsyntax-only -Isrc -x c++ {}
  echo "all src headers compile standalone"
}

stage_tier1() {
  echo "== stage tier1: configure + build + ctest =="
  rm -rf build-ci
  # shellcheck disable=SC2086
  cmake -B build-ci -S . ${GENERATOR} ${LAUNCHER}
  cmake --build build-ci -j "${JOBS}"
  (cd build-ci && ctest --output-on-failure -j "${JOBS}")
  # The whole suite again with the SIMD dispatch forced off: every
  # result the engine produces must be identical on scalar-only
  # hardware.
  echo "-- full ctest under FAIRTOPK_KERNEL=scalar"
  (cd build-ci && FAIRTOPK_KERNEL=scalar ctest --output-on-failure -j "${JOBS}")
  run_kernel_matrix build-ci
}

stage_asan() {
  echo "== stage asan: ASan/UBSan =="
  rm -rf build-ci-asan
  # Benches/examples/tools are skipped; with them off, cli_test and the
  # smoke tests are unregistered, so a plain ctest runs every library
  # test (unit + property + integration_test) under the sanitizers.
  # shellcheck disable=SC2086
  cmake -B build-ci-asan -S . ${GENERATOR} ${LAUNCHER} \
    -DFAIRTOPK_SANITIZE=ON \
    -DFAIRTOPK_BUILD_BENCHES=OFF -DFAIRTOPK_BUILD_EXAMPLES=OFF \
    -DFAIRTOPK_BUILD_TOOLS=OFF
  cmake --build build-ci-asan -j "${JOBS}"
  (cd build-ci-asan && ctest --output-on-failure -j "${JOBS}")
  # Each SIMD kernel's loads/stores under ASan/UBSan, via the
  # differential suite.
  run_kernel_matrix build-ci-asan
}

stage_tsan() {
  echo "== stage tsan: ThreadSanitizer over concurrency-labeled tests =="
  rm -rf build-ci-tsan
  # Everything threaded carries the `concurrency` CTest label: the
  # engine's sharded searches, the thread-safe session suites, the
  # pooled JSONL front-end. New concurrent suites get TSan coverage by
  # adding themselves to FAIRTOPK_CONCURRENCY_TESTS in
  # tests/CMakeLists.txt.
  # shellcheck disable=SC2086
  cmake -B build-ci-tsan -S . ${GENERATOR} ${LAUNCHER} \
    -DFAIRTOPK_SANITIZE=thread \
    -DFAIRTOPK_BUILD_BENCHES=OFF -DFAIRTOPK_BUILD_EXAMPLES=OFF \
    -DFAIRTOPK_BUILD_TOOLS=OFF
  cmake --build build-ci-tsan -j "${JOBS}"
  (cd build-ci-tsan && ctest --output-on-failure -j "${JOBS}" -L concurrency)
  # The threaded suites once per kernel variant: sharded workers racing
  # through a shared kernel table must stay clean on every tier.
  for kernel in ${KERNEL_VARIANTS}; do
    echo "-- concurrency suites under FAIRTOPK_KERNEL=${kernel}"
    (cd build-ci-tsan && FAIRTOPK_KERNEL="${kernel}" \
      ctest --output-on-failure -j "${JOBS}" -L concurrency -R '^pattern_cursor_test$|^parallel_equivalence_test$')
  done
}

stage_perf() {
  echo "== stage perf: bench smoke vs ${PERF_BASELINE} =="
  # Reuses the tier1 tree when present so the perf job can piggyback on
  # a cached build.
  if [ ! -d build-ci ]; then
    # shellcheck disable=SC2086
    cmake -B build-ci -S . ${GENERATOR} ${LAUNCHER}
  fi
  cmake --build build-ci -j "${JOBS}" --target bench_micro
  ./build-ci/bench/bench_micro \
    --benchmark_filter='BM_DetectGlobalIterTDSmall|BM_SessionReuseDetect|BM_ConcurrentDetectThroughput|BM_AndCounts|BM_AssignAndCount|BM_MetricsOverhead' \
    --benchmark_out=build-ci/bench_current.json \
    --benchmark_out_format=json
  # The SIMD-vs-scalar gate only binds when the run actually dispatched
  # a vector kernel (the JSON context records which), so a scalar-only
  # runner skips it instead of failing. The 4-vs-1-worker coalescing
  # gate sits at 1.5x (not the ideal ~2x): the SIMD kernels shortened
  # each compute, so on a single-core runner fewer duplicate requests
  # overlap an in-flight run, and the measured ratio hovers near 2x
  # with real run-to-run dips.
  python3 tools/bench_compare.py "${PERF_BASELINE}" \
    build-ci/bench_current.json \
    --max-ratio 3.0 \
    --benchmarks "${PERF_BENCHMARKS}" \
    --min-speedup 'BM_ConcurrentDetectThroughput/1/real_time,BM_ConcurrentDetectThroughput/4/real_time,1.5' \
    --min-speedup-when-kernel 'avx2|avx512|neon,BM_AndCountsScalar/1024,BM_AndCounts/1024,2.0' \
    --min-speedup-when-kernel 'avx2|avx512|neon,BM_AssignAndCountScalar/1024,BM_AssignAndCount/1024,1.5' \
    --max-ratio-pair 'BM_SessionReuseDetect/0,BM_MetricsOverhead/0,1.02' \
    --max-ratio-vs 'BM_SessionReuseDetect/0,BM_MetricsOverhead/0,1.10'
  # Metrics-overhead gates, two forms: the --max-ratio-pair is
  # machine-independent (BM_MetricsOverhead/0 is BM_SessionReuseDetect/0
  # plus the disabled instrumentation sites, measured in the same run,
  # so the ratio IS the overhead and the 2% cap is tight); the
  # --max-ratio-vs compares against the pre-instrumentation baseline
  # recording and must absorb machine drift, hence the looser 10%.

  # Restart-path gate: opening a 100k-row session from its snapshot
  # must cost at most 0.2x of rebuilding it from CSV (the paper-facing
  # "instant restart" claim; in practice the ratio is far smaller, the
  # 0.2x cap just keeps headroom for slow CI disks). Intra-run pair on
  # the same machine and dataset, so no baseline recording is needed.
  cmake --build build-ci -j "${JOBS}" --target bench_storage
  ./build-ci/bench/bench_storage \
    --benchmark_filter='BM_ColdStartCsv|BM_SnapshotOpen' \
    --benchmark_out=build-ci/bench_storage.json \
    --benchmark_out_format=json
  python3 tools/bench_compare.py "${PERF_BASELINE}" \
    build-ci/bench_storage.json \
    --benchmarks 'BM_ColdStartCsv,BM_SnapshotOpen/0,BM_SnapshotOpen/1' \
    --max-ratio-pair 'BM_ColdStartCsv,BM_SnapshotOpen/0,0.2' \
    --max-ratio-pair 'BM_ColdStartCsv,BM_SnapshotOpen/1,0.2'
  echo "perf smoke green (json: build-ci/bench_current.json)"
}

STAGES="${*:-}"
if [ -z "${STAGES}" ]; then
  if [ "${SKIP_SANITIZE:-0}" = "1" ]; then
    STAGES="headers tier1"
  else
    STAGES="headers tier1 asan tsan"
  fi
fi

for stage in ${STAGES}; do
  case "${stage}" in
    headers) stage_headers ;;
    tier1) stage_tier1 ;;
    asan) stage_asan ;;
    tsan) stage_tsan ;;
    perf) stage_perf ;;
    *)
      echo "unknown stage '${stage}' (headers tier1 asan tsan perf)" >&2
      exit 2
      ;;
  esac
done

echo "== ci.sh: all requested stages green =="
