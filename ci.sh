#!/usr/bin/env sh
# CI entry point: tier-1 verify from a clean tree, then an ASan/UBSan
# pass over the unit and property suites.
#
#   ./ci.sh            # both stages
#   SKIP_SANITIZE=1 ./ci.sh   # tier-1 only
set -eu

JOBS="$(nproc 2>/dev/null || echo 4)"
GENERATOR=""
if command -v ninja >/dev/null 2>&1; then
  GENERATOR="-GNinja"
fi

echo "== tier-1: configure + build + ctest =="
rm -rf build-ci
cmake -B build-ci -S . ${GENERATOR}
cmake --build build-ci -j "${JOBS}"
(cd build-ci && ctest --output-on-failure -j "${JOBS}")

if [ "${SKIP_SANITIZE:-0}" = "1" ]; then
  echo "== sanitize stage skipped (SKIP_SANITIZE=1) =="
  exit 0
fi

echo "== stage 2: ASan/UBSan =="
rm -rf build-ci-asan
# Benches/examples/tools are skipped; with them off, cli_test and the
# smoke tests are unregistered, so a plain ctest runs every library
# test (unit + property + integration_test) under the sanitizers.
cmake -B build-ci-asan -S . ${GENERATOR} -DFAIRTOPK_SANITIZE=ON \
  -DFAIRTOPK_BUILD_BENCHES=OFF -DFAIRTOPK_BUILD_EXAMPLES=OFF \
  -DFAIRTOPK_BUILD_TOOLS=OFF
cmake --build build-ci-asan -j "${JOBS}"
(cd build-ci-asan && ctest --output-on-failure -j "${JOBS}")

echo "== ci.sh: all green =="
