// Startup shared by the fairtopk CLI tools (fairtopk_audit,
// fairtopk_serve): load the CSV, validate the ranking column,
// bucketize numeric columns so they can participate in group
// definitions, and expand the shared flag vocabulary (k range / tau /
// --lower / --alpha) into a DetectionConfig and api::BoundsSpec. Kept
// in one place so the one-shot and serving front-ends can never drift
// in how they prepare a dataset or interpret a bound knob — the bound
// expansion itself lives in api/canonical.h, the same canonical codec
// the JSONL protocol and the session cache key use.
#ifndef FAIRTOPK_TOOLS_TOOL_COMMON_H_
#define FAIRTOPK_TOOLS_TOOL_COMMON_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "api/canonical.h"
#include "common/status.h"
#include "detect/detection_result.h"
#include "relation/bucketize.h"
#include "relation/csv.h"
#include "relation/table.h"

namespace fairtopk {

/// Loads `csv_path` (dropping `drop` columns), checks that `rank_by`
/// names a numeric column, and bucketizes every other numeric column
/// into `bins` equal-width buckets. Errors carry the offending file or
/// column in their message.
inline Result<Table> LoadAuditTable(const std::string& csv_path,
                                    const std::string& rank_by, int bins,
                                    const std::vector<std::string>& drop) {
  CsvOptions csv_options;
  csv_options.drop = drop;
  Result<Table> raw = ReadCsvFile(csv_path, csv_options);
  if (!raw.ok()) {
    return Status(raw.status().code(), "failed to read " + csv_path + ": " +
                                           raw.status().message());
  }
  auto rank_idx = raw->schema().IndexOf(rank_by);
  if (!rank_idx.has_value() ||
      raw->schema().attribute(*rank_idx).type != AttributeType::kNumeric) {
    return Status::InvalidArgument("--rank-by column '" + rank_by +
                                   "' missing or not numeric");
  }
  Table table = std::move(raw).value();
  for (size_t c = 0; c < table.schema().size(); ++c) {
    const AttributeSchema& attr = table.schema().attribute(c);
    if (attr.type != AttributeType::kNumeric || attr.name == rank_by) {
      continue;
    }
    Result<Table> bucketized = BucketizeAttribute(
        table, attr.name, bins, BucketStrategy::kEqualWidth);
    if (!bucketized.ok()) {
      return Status(bucketized.status().code(),
                    "bucketization of '" + attr.name + "' failed: " +
                        bucketized.status().message());
    }
    table = std::move(bucketized).value();
  }
  return table;
}

/// Expands the CLI's range flags into a DetectionConfig with the
/// shared clamping rules: k_max is capped by the dataset size (with
/// k_min dropping to 1 when the cap inverts the range) and tau
/// defaults to 5% of the rows (minimum 2) when not set.
inline DetectionConfig MakeToolConfig(int k_min, int k_max, int tau,
                                      int threads, size_t num_rows) {
  DetectionConfig config;
  const int n = static_cast<int>(num_rows);
  config.k_min = k_min;
  config.k_max = std::min(k_max, n);
  if (config.k_min > config.k_max) config.k_min = 1;
  config.size_threshold = tau > 0 ? tau : std::max(2, n / 20);
  config.num_threads = threads;
  return config;
}

}  // namespace fairtopk

#endif  // FAIRTOPK_TOOLS_TOOL_COMMON_H_
