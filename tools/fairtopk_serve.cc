// fairtopk_serve: long-lived audit sessions over CSV files, driven by
// a batched JSONL protocol on stdin/stdout or (with --listen) on TCP.
//
// Usage:
//   fairtopk_serve --csv data.csv --rank-by score [options] < requests.jsonl
//   fairtopk_serve --csv data.csv --rank-by score --listen 7070
//   fairtopk_serve --data-dir state/ --csv data.csv --rank-by score  # 1st run
//   fairtopk_serve --data-dir state/ --listen 7070                   # restarts
//
// With --data-dir the "default" session is durable: the first start
// cold-starts from the CSV and writes a snapshot, every maintenance op
// is appended to an op log, and SIGTERM compacts the log into a fresh
// snapshot generation — later starts skip the CSV entirely and reopen
// from disk (README.md, "Persistence").
//
// Startup mirrors fairtopk_audit: the CSV is loaded, every numeric
// column except the ranking column is bucketized so it can join group
// definitions, and one AuditSession is opened (table ranked by the
// score column, rank-ordered BitmapIndex built once) and registered in
// a SessionCatalog as "default". The JSONL protocol's catalog ops
// (`open`, `close`, `list`, `use`) manage further named sessions over
// other CSVs at runtime; plain requests keep hitting "default" so
// single-table scripts need no session plumbing.
//
// Without --listen, the process reads one JSON request object per
// stdin line and writes one JSON response object per stdout line until
// EOF. With --listen PORT it serves the same protocol to concurrent
// TCP connections (per-connection input-order responses) until SIGINT
// or SIGTERM, which drains in-flight requests and exits 0 — see
// src/service/jsonl_service.h for the protocol and README.md for
// worked transcripts.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/metrics/metrics.h"
#include "common/signals.h"
#include "common/socket.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "service/jsonl_service.h"
#include "service/net/metrics_http.h"
#include "service/net/socket_server.h"
#include "service/persistence.h"
#include "service/session_catalog.h"
#include "service/table_loader.h"

namespace fairtopk {
namespace {

struct Args {
  std::string csv;
  std::string rank_by;
  std::string data_dir;  // empty = in-memory only
  bool mmap = false;
  bool fsync_always = false;
  bool ascending = false;
  int k_min = 10;
  int k_max = 49;
  int tau = 0;  // 0 = 5% of rows
  int threads = 1;
  int bins = 4;
  std::vector<std::string> drop;
  double lower_fraction = 0.5;
  double alpha = 0.8;
  double rebuild_threshold = 0.5;
  int cache_capacity = 64;
  int workers = 1;
  bool ordered = false;
  int batch_workers = 0;
  int listen_port = -1;  // -1 = stdin/stdout mode
  std::string host = "127.0.0.1";
  int max_pending = 0;
  int metrics_port = -1;  // -1 = no Prometheus endpoint
  int slow_query_micros = 0;  // 0 = slow-query log off
};

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: fairtopk_serve --csv data.csv --rank-by column [options]\n"
      "\n"
      "Serves audit sessions over the CSV: reads one JSON request per\n"
      "stdin line, writes one JSON response per stdout line until EOF —\n"
      "or, with --listen, serves the same protocol to concurrent TCP\n"
      "connections until SIGINT/SIGTERM. Ops: detect, detect_batch,\n"
      "capabilities, suggest, verify, rerank, update, append, stats,\n"
      "invalidate, plus the session catalog: open, close, list, use\n"
      "(see README.md, \"Serving audits\" and \"Network serving\";\n"
      "capabilities lists every registered detector with its parameter\n"
      "schema). The startup CSV is session \"default\".\n"
      "\n"
      "Options:\n"
      "  --csv PATH             input CSV file (required)\n"
      "  --rank-by COLUMN       numeric column to rank by, descending\n"
      "                         (required)\n"
      "  --ascending            rank ascending instead\n"
      "  --kmin K --kmax K      default rank range (default 10..49,\n"
      "                         clamped to |D|)\n"
      "  --tau N                default group size threshold\n"
      "                         (default 5%% of rows)\n"
      "  --threads N            default worker threads per query\n"
      "                         (0 = hardware concurrency)\n"
      "  --lower X              default global lower bound, fraction\n"
      "                         of k (default 0.5)\n"
      "  --alpha X              default proportional multiplier\n"
      "                         (default 0.8)\n"
      "  --bins N               buckets per numeric attribute\n"
      "                         (default 4)\n"
      "  --drop col1,col2       columns to ignore (ids, names, ...)\n"
      "  --data-dir DIR         durable session state: open DIR's\n"
      "                         snapshot and replay its op log when\n"
      "                         present (skipping the CSV load), cold\n"
      "                         start from --csv and save the initial\n"
      "                         snapshot otherwise; update/append ops\n"
      "                         are logged, op=save compacts, and\n"
      "                         shutdown compacts automatically\n"
      "  --mmap                 open snapshots via mmap instead of\n"
      "                         read()\n"
      "  --fsync-always         fsync the op log after every\n"
      "                         maintenance op (durable to the power\n"
      "                         cord, slower updates)\n"
      "  --rebuild-threshold X  patch the index in place while at most\n"
      "                         X*|D| rank positions changed row;\n"
      "                         rebuild beyond it (default 0.5)\n"
      "  --cache-capacity N     cached detection results (default 64,\n"
      "                         0 disables)\n"
      "  --workers N            request lines executed concurrently\n"
      "                         (default 1 = serial; 0 = hardware\n"
      "                         concurrency). On stdin, responses\n"
      "                         stream in completion order, tagged by\n"
      "                         request id; on TCP the pool is shared\n"
      "                         by all connections\n"
      "  --ordered              with --workers on stdin, reorder\n"
      "                         responses into input order (TCP\n"
      "                         connections are always ordered)\n"
      "  --batch-workers N      pool running detect_batch members\n"
      "                         concurrently (default 0 = serial;\n"
      "                         multiplies with per-query --threads)\n"
      "  --listen PORT          serve TCP on --host instead of stdin\n"
      "                         (0 picks an ephemeral port, printed on\n"
      "                         stderr); SIGINT/SIGTERM drains and\n"
      "                         exits 0\n"
      "  --host ADDR            numeric address to bind\n"
      "                         (default 127.0.0.1)\n"
      "  --max-pending N        per-connection / stdin-loop bound on\n"
      "                         admitted-but-unanswered lines\n"
      "                         (default 4 * workers)\n"
      "  --metrics-port P       serve Prometheus text metrics via\n"
      "                         HTTP GET /metrics on --host:P (0 picks\n"
      "                         an ephemeral port, printed on stderr);\n"
      "                         works in both stdin and TCP modes\n"
      "  --slow-query-log N     trace every request and log a JSONL\n"
      "                         line to stderr for any request taking\n"
      "                         >= N microseconds end to end\n"
      "  --help                 print this message and exit\n");
}

bool ParseArgs(int argc, char** argv, Args& args, bool& help) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    auto next_int = [&](const char* name, int min, int max,
                        int& out) -> bool {
      const char* v = next(name);
      if (v == nullptr) return false;
      auto parsed = ParseInt(v);
      if (!parsed.has_value() || *parsed < min || *parsed > max) {
        std::fprintf(stderr, "%s expects an integer in [%d, %d], got '%s'\n",
                     name, min, max, v);
        return false;
      }
      out = static_cast<int>(*parsed);
      return true;
    };
    auto next_double = [&](const char* name, double& out) -> bool {
      const char* v = next(name);
      if (v == nullptr) return false;
      auto parsed = ParseDouble(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "%s expects a number, got '%s'\n", name, v);
        return false;
      }
      out = *parsed;
      return true;
    };
    if (flag == "--help" || flag == "-h") {
      help = true;
      return true;
    } else if (flag == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      args.csv = v;
    } else if (flag == "--rank-by") {
      const char* v = next("--rank-by");
      if (v == nullptr) return false;
      args.rank_by = v;
    } else if (flag == "--ascending") {
      args.ascending = true;
    } else if (flag == "--kmin") {
      if (!next_int("--kmin", 1, 1 << 30, args.k_min)) return false;
    } else if (flag == "--kmax") {
      if (!next_int("--kmax", 1, 1 << 30, args.k_max)) return false;
    } else if (flag == "--tau") {
      if (!next_int("--tau", 1, 1 << 30, args.tau)) return false;
    } else if (flag == "--threads") {
      if (!next_int("--threads", 0, 4096, args.threads)) return false;
    } else if (flag == "--bins") {
      if (!next_int("--bins", 2, 1 << 20, args.bins)) return false;
    } else if (flag == "--cache-capacity") {
      if (!next_int("--cache-capacity", 0, 1 << 30, args.cache_capacity)) {
        return false;
      }
    } else if (flag == "--workers") {
      if (!next_int("--workers", 0, 4096, args.workers)) return false;
    } else if (flag == "--ordered") {
      args.ordered = true;
    } else if (flag == "--batch-workers") {
      if (!next_int("--batch-workers", 0, 4096, args.batch_workers)) {
        return false;
      }
    } else if (flag == "--lower") {
      if (!next_double("--lower", args.lower_fraction)) return false;
    } else if (flag == "--alpha") {
      if (!next_double("--alpha", args.alpha)) return false;
    } else if (flag == "--rebuild-threshold") {
      if (!next_double("--rebuild-threshold", args.rebuild_threshold)) {
        return false;
      }
    } else if (flag == "--drop") {
      const char* v = next("--drop");
      if (v == nullptr) return false;
      args.drop = Split(v, ',');
    } else if (flag == "--data-dir") {
      const char* v = next("--data-dir");
      if (v == nullptr) return false;
      args.data_dir = v;
    } else if (flag == "--mmap") {
      args.mmap = true;
    } else if (flag == "--fsync-always") {
      args.fsync_always = true;
    } else if (flag == "--listen") {
      if (!next_int("--listen", 0, 65535, args.listen_port)) return false;
    } else if (flag == "--host") {
      const char* v = next("--host");
      if (v == nullptr) return false;
      args.host = v;
    } else if (flag == "--max-pending") {
      if (!next_int("--max-pending", 0, 1 << 20, args.max_pending)) {
        return false;
      }
    } else if (flag == "--metrics-port") {
      if (!next_int("--metrics-port", 0, 65535, args.metrics_port)) {
        return false;
      }
    } else if (flag == "--slow-query-log") {
      if (!next_int("--slow-query-log", 1, 1 << 30, args.slow_query_micros)) {
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      PrintUsage(stderr);
      return false;
    }
  }
  // --data-dir can start from an existing snapshot alone; every other
  // mode (and a data-dir cold start, checked at open) needs the CSV.
  if ((args.csv.empty() || args.rank_by.empty()) && args.data_dir.empty()) {
    PrintUsage(stderr);
    return false;
  }
  return true;
}

int ResolveWorkers(int workers) {
  if (workers != 0) return workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// On --data-dir shutdown: fold the accumulated op log into a fresh
/// snapshot generation so the next start replays nothing.
void CompactOnExit(SessionCatalog& catalog) {
  std::shared_ptr<SessionCatalog::Entry> entry = catalog.Find("default");
  if (entry == nullptr) return;
  const SessionStorageInfo before = entry->session.storage_info();
  if (!before.log_attached) return;
  if (Status saved = entry->session.SaveSnapshot(); !saved.ok()) {
    std::fprintf(stderr, "compaction failed (state persists in the op "
                         "log): %s\n",
                 saved.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "compacted %llu op(s) into snapshot generation %llu\n",
               static_cast<unsigned long long>(before.log_records),
               static_cast<unsigned long long>(
                   entry->session.storage_info().generation));
}

int RunServe(const Args& args) {
  // Start the uptime clock before loading anything so the reported
  // uptime covers (almost) the whole process life.
  (void)metrics::UptimeSeconds();
  SessionOptions session_options;
  session_options.rebuild_threshold = args.rebuild_threshold;
  session_options.cache_capacity = static_cast<size_t>(args.cache_capacity);
  if (args.batch_workers > 0) {
    // Dedicated pool for detect_batch members; deliberately separate
    // from the front-end workers (a request line blocking inside
    // DetectMany must never occupy the pool its sub-queries need).
    session_options.batch_executor =
        std::make_shared<ThreadPool>(args.batch_workers);
  }

  auto cold_start = [&args,
                     &session_options]() -> Result<AuditSession> {
    if (args.csv.empty() || args.rank_by.empty()) {
      return Status::InvalidArgument(
          "--data-dir holds no snapshot yet: the first start needs "
          "--csv and --rank-by to build one");
    }
    FAIRTOPK_ASSIGN_OR_RETURN(
        Table table,
        LoadAuditTable(args.csv, args.rank_by, args.bins, args.drop));
    return AuditSession::Create(std::move(table), args.rank_by,
                                args.ascending, session_options);
  };

  std::optional<AuditSession> session;
  if (!args.data_dir.empty()) {
    PersistentOpenOptions persist;
    persist.mode = args.mmap ? storage::OpenMode::kMmap
                             : storage::OpenMode::kRead;
    persist.fsync = args.fsync_always ? storage::FsyncPolicy::kAlways
                                      : storage::FsyncPolicy::kNever;
    PersistentOpenReport report;
    Result<AuditSession> opened = OpenPersistentSession(
        args.data_dir, cold_start, session_options, persist, &report);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    session.emplace(std::move(opened).value());
    if (report.cold_start) {
      std::fprintf(stderr, "data dir %s: cold start from %s\n",
                   args.data_dir.c_str(), args.csv.c_str());
    } else {
      std::fprintf(stderr,
                   "data dir %s: snapshot generation %llu, %zu op(s) "
                   "replayed%s%s\n",
                   args.data_dir.c_str(),
                   static_cast<unsigned long long>(
                       session->storage_info().generation),
                   report.replayed_records,
                   report.dropped_torn_tail ? ", torn tail dropped" : "",
                   report.discarded_stale_log ? ", stale log discarded" : "");
    }
  } else {
    Result<AuditSession> built = cold_start();
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    session.emplace(std::move(built).value());
  }

  const int n = static_cast<int>(session->num_rows());
  ServeDefaults defaults;
  defaults.dataset = args.data_dir.empty() ? args.csv : args.data_dir;
  defaults.config = MakeToolConfig(args.k_min, args.k_max, args.tau,
                                   args.threads, static_cast<size_t>(n));
  defaults.bounds.lower_fraction = args.lower_fraction;
  defaults.bounds.alpha = args.alpha;

  // Both modes serve a catalog so `open`/`close`/`list`/`use` work; the
  // startup CSV is "default", which plain requests route to.
  SessionCatalog catalog;
  const size_t attributes = session->space().num_attributes();
  if (Status adopted = catalog.Adopt("default", std::move(*session),
                                     std::move(defaults));
      !adopted.ok()) {
    std::fprintf(stderr, "%s\n", adopted.ToString().c_str());
    return 1;
  }
  JsonlService service(&catalog, "default");
  const int workers = ResolveWorkers(args.workers);
  service.set_server_workers(workers);
  if (args.slow_query_micros > 0) {
    ObservabilityOptions observability;
    observability.slow_query_log_micros =
        static_cast<uint64_t>(args.slow_query_micros);
    service.set_observability(observability);
  }

  // The Prometheus endpoint rides along in either serving mode; its
  // Shutdown() runs from this scope's unwinding after the main loop
  // ends, so a final scrape can still see the complete counters until
  // the process is actually about to exit.
  std::unique_ptr<MetricsHttpServer> metrics_http;
  if (args.metrics_port >= 0) {
    Result<std::unique_ptr<MetricsHttpServer>> created =
        MetricsHttpServer::Create(args.host,
                                  static_cast<uint16_t>(args.metrics_port));
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    metrics_http = std::move(created).value();
    metrics_http->Start();
    // The metrics smoke driver parses this exact line for the port.
    std::fprintf(stderr, "metrics on %s:%u\n", args.host.c_str(),
                 static_cast<unsigned>(metrics_http->port()));
  }

  if (args.listen_port < 0) {
    ServeOptions serve_options;
    serve_options.workers = workers;
    serve_options.ordered = args.ordered;
    serve_options.max_pending = static_cast<size_t>(args.max_pending);
    std::fprintf(stderr,
                 "session ready: %d rows, %zu pattern attributes, "
                 "%d worker(s)%s\n",
                 n, attributes, serve_options.workers,
                 serve_options.ordered ? " (ordered)" : "");
    service.Serve(std::cin, std::cout, serve_options);
    CompactOnExit(catalog);
    return 0;
  }

  // TCP mode. The signal pipe is installed BEFORE the listener opens:
  // a SIGTERM racing startup must still win a clean drain, not the
  // default kill.
  Result<int> signal_fd = InstallShutdownSignalPipe();
  if (!signal_fd.ok()) {
    std::fprintf(stderr, "%s\n", signal_fd.status().ToString().c_str());
    return 1;
  }
  Result<TcpListener> listener = TcpListener::Listen(
      args.host, static_cast<uint16_t>(args.listen_port));
  if (!listener.ok()) {
    std::fprintf(stderr, "%s\n", listener.status().ToString().c_str());
    return 1;
  }
  SocketServerOptions server_options;
  server_options.workers = workers;
  server_options.max_pending = static_cast<size_t>(args.max_pending);
  SocketServer server(&service, std::move(listener).value(), server_options);
  server.Start();
  std::fprintf(stderr,
               "session ready: %d rows, %zu pattern attributes, "
               "%d worker(s)\n",
               n, attributes, workers);
  // The smoke driver parses this exact line for the ephemeral port.
  std::fprintf(stderr, "listening on %s:%u\n", args.host.c_str(),
               static_cast<unsigned>(server.port()));

  // Block until SIGINT/SIGTERM; the handler writes one byte to the
  // pipe (async-signal-safe), this read is the synchronous other end.
  char byte;
  ssize_t got;
  do {
    got = ::read(*signal_fd, &byte, 1);
  } while (got < 0 && errno == EINTR);
  std::fprintf(stderr,
               "shutting down: draining in-flight requests "
               "(%zu connection(s) served)\n",
               server.connections_accepted());
  server.RequestShutdown();
  server.Wait();
  // Requests are drained: the catalog's default session is quiescent,
  // so this is the natural compaction point.
  CompactOnExit(catalog);
  return 0;
}

}  // namespace
}  // namespace fairtopk

int main(int argc, char** argv) {
  fairtopk::Args args;
  bool help = false;
  if (!fairtopk::ParseArgs(argc, argv, args, help)) return 2;
  if (help) {
    fairtopk::PrintUsage(stdout);
    return 0;
  }
  return fairtopk::RunServe(args);
}
