// fairtopk_serve: long-lived audit session over a CSV file, driven by
// a batched JSONL protocol on stdin/stdout.
//
// Usage:
//   fairtopk_serve --csv data.csv --rank-by score [options] < requests.jsonl
//
// Startup mirrors fairtopk_audit: the CSV is loaded, every numeric
// column except the ranking column is bucketized so it can join group
// definitions, and one AuditSession is opened (table ranked by the
// score column, rank-ordered BitmapIndex built once). The process then
// reads one JSON request object per stdin line and writes one JSON
// response object per stdout line until EOF — detection queries are
// cached, and `update`/`append` requests maintain the ranking and
// index incrementally instead of rebuilding (see
// src/service/jsonl_service.h for the protocol and README.md for a
// worked transcript).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "service/jsonl_service.h"
#include "tool_common.h"

namespace fairtopk {
namespace {

struct Args {
  std::string csv;
  std::string rank_by;
  bool ascending = false;
  int k_min = 10;
  int k_max = 49;
  int tau = 0;  // 0 = 5% of rows
  int threads = 1;
  int bins = 4;
  std::vector<std::string> drop;
  double lower_fraction = 0.5;
  double alpha = 0.8;
  double rebuild_threshold = 0.5;
  int cache_capacity = 64;
  int workers = 1;
  bool ordered = false;
  int batch_workers = 0;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: fairtopk_serve --csv data.csv --rank-by column [options]\n"
      "\n"
      "Serves an audit session over the CSV: reads one JSON request per\n"
      "stdin line, writes one JSON response per stdout line until EOF.\n"
      "Ops: detect, detect_batch, capabilities, suggest, verify, rerank,\n"
      "update, append, stats, invalidate (see README.md, \"Serving\n"
      "audits\"; capabilities lists every registered detector with its\n"
      "parameter schema).\n"
      "\n"
      "Options:\n"
      "  --csv PATH             input CSV file (required)\n"
      "  --rank-by COLUMN       numeric column to rank by, descending\n"
      "                         (required)\n"
      "  --ascending            rank ascending instead\n"
      "  --kmin K --kmax K      default rank range (default 10..49,\n"
      "                         clamped to |D|)\n"
      "  --tau N                default group size threshold\n"
      "                         (default 5%% of rows)\n"
      "  --threads N            default worker threads per query\n"
      "                         (0 = hardware concurrency)\n"
      "  --lower X              default global lower bound, fraction\n"
      "                         of k (default 0.5)\n"
      "  --alpha X              default proportional multiplier\n"
      "                         (default 0.8)\n"
      "  --bins N               buckets per numeric attribute\n"
      "                         (default 4)\n"
      "  --drop col1,col2       columns to ignore (ids, names, ...)\n"
      "  --rebuild-threshold X  patch the index in place while at most\n"
      "                         X*|D| rank positions changed row;\n"
      "                         rebuild beyond it (default 0.5)\n"
      "  --cache-capacity N     cached detection results (default 64,\n"
      "                         0 disables)\n"
      "  --workers N            request lines executed concurrently\n"
      "                         (default 1 = serial; 0 = hardware\n"
      "                         concurrency). Responses stream in\n"
      "                         completion order, tagged by request id\n"
      "  --ordered              with --workers, reorder responses into\n"
      "                         input order before flushing\n"
      "  --batch-workers N      pool running detect_batch members\n"
      "                         concurrently (default 0 = serial;\n"
      "                         multiplies with per-query --threads)\n"
      "  --help                 print this message and exit\n");
}

bool ParseArgs(int argc, char** argv, Args& args, bool& help) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    auto next_int = [&](const char* name, int min, int max,
                        int& out) -> bool {
      const char* v = next(name);
      if (v == nullptr) return false;
      auto parsed = ParseInt(v);
      if (!parsed.has_value() || *parsed < min || *parsed > max) {
        std::fprintf(stderr, "%s expects an integer in [%d, %d], got '%s'\n",
                     name, min, max, v);
        return false;
      }
      out = static_cast<int>(*parsed);
      return true;
    };
    auto next_double = [&](const char* name, double& out) -> bool {
      const char* v = next(name);
      if (v == nullptr) return false;
      auto parsed = ParseDouble(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "%s expects a number, got '%s'\n", name, v);
        return false;
      }
      out = *parsed;
      return true;
    };
    if (flag == "--help" || flag == "-h") {
      help = true;
      return true;
    } else if (flag == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      args.csv = v;
    } else if (flag == "--rank-by") {
      const char* v = next("--rank-by");
      if (v == nullptr) return false;
      args.rank_by = v;
    } else if (flag == "--ascending") {
      args.ascending = true;
    } else if (flag == "--kmin") {
      if (!next_int("--kmin", 1, 1 << 30, args.k_min)) return false;
    } else if (flag == "--kmax") {
      if (!next_int("--kmax", 1, 1 << 30, args.k_max)) return false;
    } else if (flag == "--tau") {
      if (!next_int("--tau", 1, 1 << 30, args.tau)) return false;
    } else if (flag == "--threads") {
      if (!next_int("--threads", 0, 4096, args.threads)) return false;
    } else if (flag == "--bins") {
      if (!next_int("--bins", 2, 1 << 20, args.bins)) return false;
    } else if (flag == "--cache-capacity") {
      if (!next_int("--cache-capacity", 0, 1 << 30, args.cache_capacity)) {
        return false;
      }
    } else if (flag == "--workers") {
      if (!next_int("--workers", 0, 4096, args.workers)) return false;
    } else if (flag == "--ordered") {
      args.ordered = true;
    } else if (flag == "--batch-workers") {
      if (!next_int("--batch-workers", 0, 4096, args.batch_workers)) {
        return false;
      }
    } else if (flag == "--lower") {
      if (!next_double("--lower", args.lower_fraction)) return false;
    } else if (flag == "--alpha") {
      if (!next_double("--alpha", args.alpha)) return false;
    } else if (flag == "--rebuild-threshold") {
      if (!next_double("--rebuild-threshold", args.rebuild_threshold)) {
        return false;
      }
    } else if (flag == "--drop") {
      const char* v = next("--drop");
      if (v == nullptr) return false;
      args.drop = Split(v, ',');
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      PrintUsage(stderr);
      return false;
    }
  }
  if (args.csv.empty() || args.rank_by.empty()) {
    PrintUsage(stderr);
    return false;
  }
  return true;
}

int RunServe(const Args& args) {
  Result<Table> loaded =
      LoadAuditTable(args.csv, args.rank_by, args.bins, args.drop);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Table table = std::move(loaded).value();

  const int n = static_cast<int>(table.num_rows());
  SessionOptions session_options;
  session_options.rebuild_threshold = args.rebuild_threshold;
  session_options.cache_capacity = static_cast<size_t>(args.cache_capacity);
  if (args.batch_workers > 0) {
    // Dedicated pool for detect_batch members; deliberately separate
    // from the front-end workers (a request line blocking inside
    // DetectMany must never occupy the pool its sub-queries need).
    session_options.batch_executor =
        std::make_shared<ThreadPool>(args.batch_workers);
  }
  Result<AuditSession> session = AuditSession::Create(
      std::move(table), args.rank_by, args.ascending, session_options);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }

  ServeDefaults defaults;
  defaults.dataset = args.csv;
  defaults.config = MakeToolConfig(args.k_min, args.k_max, args.tau,
                                   args.threads, static_cast<size_t>(n));
  defaults.bounds.lower_fraction = args.lower_fraction;
  defaults.bounds.alpha = args.alpha;

  ServeOptions serve_options;
  serve_options.workers = args.workers;
  if (serve_options.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    serve_options.workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  serve_options.ordered = args.ordered;

  std::fprintf(stderr,
               "session ready: %d rows, %zu pattern attributes, "
               "%d worker(s)%s\n",
               n, session->space().num_attributes(), serve_options.workers,
               serve_options.ordered ? " (ordered)" : "");
  JsonlService service(&session.value(), defaults);
  service.Serve(std::cin, std::cout, serve_options);
  return 0;
}

}  // namespace
}  // namespace fairtopk

int main(int argc, char** argv) {
  fairtopk::Args args;
  bool help = false;
  if (!fairtopk::ParseArgs(argc, argv, args, help)) return 2;
  if (help) {
    fairtopk::PrintUsage(stdout);
    return 0;
  }
  return fairtopk::RunServe(args);
}
