// fairtopk_audit: end-to-end ranked-representation audit of a CSV file.
//
// Usage:
//   fairtopk_audit --csv data.csv --rank-by score [options]
//
// Pipeline: load the CSV (numeric columns inferred), bucketize numeric
// attributes so they can participate in group definitions, rank by the
// requested score column (descending by default), detect groups with
// biased representation under the chosen detector (resolved from the
// api::DetectorRegistry by --measure x --algo), and print a text
// report (or JSON with --json). Optionally explains the most biased
// group via the Shapley pipeline.
//
// Options:
//   --csv PATH             input CSV file (required)
//   --rank-by COLUMN       numeric column to rank by, descending
//                          (required)
//   --ascending            rank ascending instead
//   --measure global|prop  fairness measure (default: prop)
//   --algo itertd|bounds|upper
//                          detection algorithm within the measure
//                          (default: bounds — the paper's optimized
//                          incremental detector; itertd is the
//                          baseline, upper reports over-represented
//                          groups)
//   --alpha X              proportional multiplier (default 0.8)
//   --beta X               proportional upper multiplier (default
//                          +inf; used by --algo upper / verification)
//   --lower X              global lower bound, fraction of k
//                          (default 0.5: L_k = 0.5k staircase)
//   --upper X              constant global upper bound (default +inf;
//                          used by --algo upper / verification)
//   --kmin K --kmax K      rank range (default 10..49, clamped to |D|)
//   --tau N                group size threshold (default 5% of rows)
//   --threads N            worker threads for the top-down searches
//                          (default 1; 0 = hardware concurrency;
//                          results are identical for every value)
//   --bins N               buckets per numeric attribute (default 4)
//   --drop col1,col2       columns to ignore (ids, names, ...)
//   --suggest              calibrate bounds automatically
//   --explain              Shapley-explain the most biased group
//   --json                 emit the detection report as JSON
//   --verify "A=v;B=w"     instead of detecting, verify the given
//                          group against the bounds and report the
//                          violating k values
//   --rerank PATH          after detection, repair the ranking so the
//                          detected groups meet the bounds and write
//                          the re-ranked table to PATH as CSV
//   --help                 print the flag table and exit
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "api/audit.h"
#include "api/canonical.h"
#include "common/strings.h"
#include "detect/presentation.h"
#include "detect/suggest.h"
#include "detect/verify.h"
#include "explain/group_explainer.h"
#include "mitigate/rerank.h"
#include "ranking/attribute_ranker.h"
#include "relation/csv.h"
#include "report/json_report.h"
#include "service/table_loader.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace fairtopk {
namespace {

struct Args {
  std::string csv;
  std::string rank_by;
  bool ascending = false;
  std::string measure = "prop";
  std::string algo = "bounds";
  /// Registry entry resolved from (measure, algo) at the end of
  /// ParseArgs.
  const api::DetectorDescriptor* detector = nullptr;
  double alpha = 0.8;
  double beta = std::numeric_limits<double>::infinity();
  double lower_fraction = 0.5;
  double upper = std::numeric_limits<double>::infinity();
  int k_min = 10;
  int k_max = 49;
  int tau = 0;  // 0 = 5% of rows
  int threads = 1;
  int bins = 4;
  std::vector<std::string> drop;
  bool suggest = false;
  bool explain = false;
  bool json = false;
  std::string verify_group;
  std::string rerank_path;
  std::string snapshot;       ///< open this snapshot instead of a CSV
  std::string save_snapshot;  ///< write the prepared input here
};

/// The full flag table (kept in sync with the file comment); printed
/// by --help and after argument errors.
void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: fairtopk_audit --csv data.csv --rank-by column [options]\n"
      "\n"
      "Options:\n"
      "  --csv PATH             input CSV file (required)\n"
      "  --rank-by COLUMN       numeric column to rank by, descending\n"
      "                         (required)\n"
      "  --ascending            rank ascending instead\n"
      "  --measure global|prop  fairness measure (default: prop)\n"
      "  --algo itertd|bounds|upper\n"
      "                         detection algorithm within the measure\n"
      "                         (default: bounds; itertd is the paper\n"
      "                         baseline, upper reports\n"
      "                         over-represented groups)\n"
      "  --alpha X              proportional multiplier (default 0.8)\n"
      "  --beta X               proportional upper multiplier\n"
      "                         (default +inf; used by --algo upper\n"
      "                         and verification)\n"
      "  --lower X              global lower bound, fraction of k\n"
      "                         (default 0.5: L_k = 0.5k staircase)\n"
      "  --upper X              constant global upper bound (default\n"
      "                         +inf; used by --algo upper and\n"
      "                         verification)\n"
      "  --kmin K --kmax K      rank range (default 10..49, clamped\n"
      "                         to |D|)\n"
      "  --tau N                group size threshold (default 5%% of\n"
      "                         rows)\n"
      "  --threads N            worker threads for the top-down\n"
      "                         searches (default 1; 0 = hardware\n"
      "                         concurrency; results are identical\n"
      "                         for every value)\n"
      "  --bins N               buckets per numeric attribute\n"
      "                         (default 4)\n"
      "  --drop col1,col2       columns to ignore (ids, names, ...)\n"
      "  --suggest              calibrate bounds automatically\n"
      "  --explain              Shapley-explain the most biased group\n"
      "  --json                 emit the detection report as JSON\n"
      "  --verify \"A=v;B=w\"     instead of detecting, verify the\n"
      "                         given group against the bounds and\n"
      "                         report the violating k values\n"
      "  --rerank PATH          after detection, repair the ranking\n"
      "                         so the detected groups meet the\n"
      "                         bounds and write the re-ranked table\n"
      "                         to PATH as CSV\n"
      "  --snapshot PATH        open a saved snapshot instead of\n"
      "                         loading a CSV (skips parse, bucketize\n"
      "                         and index build; --csv/--rank-by are\n"
      "                         not needed)\n"
      "  --save-snapshot PATH   after preparing the input, write it to\n"
      "                         PATH as a snapshot for later --snapshot\n"
      "                         opens and fairtopk_serve --data-dir\n"
      "  --help                 print this message and exit\n");
}

bool ParseArgs(int argc, char** argv, Args& args, bool& help) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      help = true;
      return true;
    } else if (flag == "--csv") {
      const char* v = next("--csv");
      if (v == nullptr) return false;
      args.csv = v;
    } else if (flag == "--rank-by") {
      const char* v = next("--rank-by");
      if (v == nullptr) return false;
      args.rank_by = v;
    } else if (flag == "--ascending") {
      args.ascending = true;
    } else if (flag == "--measure") {
      const char* v = next("--measure");
      if (v == nullptr) return false;
      args.measure = v;
    } else if (flag == "--algo") {
      const char* v = next("--algo");
      if (v == nullptr) return false;
      args.algo = v;
    } else if (flag == "--alpha") {
      const char* v = next("--alpha");
      if (v == nullptr) return false;
      args.alpha = std::atof(v);
    } else if (flag == "--beta") {
      const char* v = next("--beta");
      if (v == nullptr) return false;
      args.beta = std::atof(v);
    } else if (flag == "--upper") {
      const char* v = next("--upper");
      if (v == nullptr) return false;
      args.upper = std::atof(v);
    } else if (flag == "--lower") {
      const char* v = next("--lower");
      if (v == nullptr) return false;
      args.lower_fraction = std::atof(v);
    } else if (flag == "--kmin") {
      const char* v = next("--kmin");
      if (v == nullptr) return false;
      args.k_min = std::atoi(v);
    } else if (flag == "--kmax") {
      const char* v = next("--kmax");
      if (v == nullptr) return false;
      args.k_max = std::atoi(v);
    } else if (flag == "--tau") {
      const char* v = next("--tau");
      if (v == nullptr) return false;
      args.tau = std::atoi(v);
    } else if (flag == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      // Strict parse: 0 means "hardware concurrency", so an atoi-style
      // silent 0 on a typo would select maximal parallelism.
      char* end = nullptr;
      const long threads = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || threads < 0 || threads > 4096) {
        std::fprintf(stderr,
                     "--threads must be a non-negative integer "
                     "(0 = hardware concurrency), got '%s'\n",
                     v);
        return false;
      }
      args.threads = static_cast<int>(threads);
    } else if (flag == "--bins") {
      const char* v = next("--bins");
      if (v == nullptr) return false;
      args.bins = std::atoi(v);
    } else if (flag == "--drop") {
      const char* v = next("--drop");
      if (v == nullptr) return false;
      args.drop = Split(v, ',');
    } else if (flag == "--verify") {
      const char* v = next("--verify");
      if (v == nullptr) return false;
      args.verify_group = v;
    } else if (flag == "--rerank") {
      const char* v = next("--rerank");
      if (v == nullptr) return false;
      args.rerank_path = v;
    } else if (flag == "--snapshot") {
      const char* v = next("--snapshot");
      if (v == nullptr) return false;
      args.snapshot = v;
    } else if (flag == "--save-snapshot") {
      const char* v = next("--save-snapshot");
      if (v == nullptr) return false;
      args.save_snapshot = v;
    } else if (flag == "--suggest") {
      args.suggest = true;
    } else if (flag == "--explain") {
      args.explain = true;
    } else if (flag == "--json") {
      args.json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      PrintUsage(stderr);
      return false;
    }
  }
  // A snapshot open carries its own ranking column and direction.
  if ((args.csv.empty() || args.rank_by.empty()) && args.snapshot.empty()) {
    PrintUsage(stderr);
    return false;
  }
  // One registry lookup validates the (measure, algo) matrix — no
  // hand-maintained flag table to drift from the detector set.
  auto detector =
      api::DetectorRegistry::Global().Resolve(args.measure, args.algo);
  if (!detector.ok()) {
    std::fprintf(stderr, "%s\n", detector.status().ToString().c_str());
    return false;
  }
  args.detector = *detector;
  if (!args.detector->lower_violations) {
    // An upper detector with its bound left at +inf can only report
    // nothing — refuse instead of printing a silently empty audit.
    const bool knob_set =
        args.detector->bounds_kind == api::BoundsKind::kGlobal
            ? !std::isinf(args.upper)
            : !std::isinf(args.beta);
    if (!knob_set) {
      std::fprintf(stderr,
                   "--algo upper needs an upper bound: pass %s\n",
                   args.detector->bounds_kind == api::BoundsKind::kGlobal
                       ? "--upper X"
                       : "--beta X");
      return false;
    }
    // Over-represented groups must never become representation floors.
    if (!args.rerank_path.empty()) {
      std::fprintf(stderr,
                   "--rerank requires a lower-bound detector (--algo "
                   "upper reports over-represented groups)\n");
      return false;
    }
  }
  return true;
}

/// Parses "Attr=value;Attr2=value2" into a pattern over `space`.
Result<Pattern> ParseGroupSpec(const std::string& spec,
                               const PatternSpace& space) {
  Pattern pattern = Pattern::Empty(space.num_attributes());
  for (const std::string& term : Split(spec, ';')) {
    auto parts = Split(term, '=');
    if (parts.size() != 2) {
      return Status::InvalidArgument("bad group term: " + term);
    }
    const std::string name(Trim(parts[0]));
    const std::string value(Trim(parts[1]));
    bool found = false;
    for (size_t a = 0; a < space.num_attributes() && !found; ++a) {
      if (space.name(a) != name) continue;
      for (int16_t v = 0; v < space.domain_size(a); ++v) {
        if (space.label(a, v) == value) {
          pattern = pattern.With(a, v);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("value '" + value +
                                "' not in the domain of '" + name + "'");
      }
    }
    if (!found) {
      return Status::NotFound("attribute '" + name +
                              "' not in the pattern space");
    }
  }
  if (pattern.IsEmpty()) {
    return Status::InvalidArgument("group spec assigns no attributes");
  }
  return pattern;
}

int RunAudit(const Args& args) {
  std::optional<Table> table;
  std::optional<DetectionInput> input;
  std::string rank_by = args.rank_by;
  bool ascending = args.ascending;
  if (!args.snapshot.empty()) {
    // Snapshot open: the table, ranking and index come back exactly as
    // saved — no parse, no bucketize, no index build.
    Result<storage::OpenedSnapshot> snap =
        storage::ReadSnapshot(args.snapshot, storage::OpenMode::kRead);
    if (!snap.ok()) {
      std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
      return 1;
    }
    ascending = snap->ascending;
    if (snap->score_column >= 0) {
      rank_by = snap->table->schema()
                    .attribute(static_cast<size_t>(snap->score_column))
                    .name;
    } else {
      rank_by.clear();  // explicit-scores snapshot: no ranking column
    }
    table.emplace(std::move(*snap->table));
    input.emplace(DetectionInput::FromIndex(std::move(*snap->index)));
  } else {
    // Rank on the raw numeric column, then bucketize every OTHER
    // numeric column so it can join group definitions.
    Result<Table> loaded =
        LoadAuditTable(args.csv, args.rank_by, args.bins, args.drop);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    table.emplace(std::move(loaded).value());
    AttributeRanker ranker({{args.rank_by, args.ascending}});
    Result<DetectionInput> prepared = DetectionInput::Prepare(*table, ranker);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
      return 1;
    }
    input.emplace(std::move(prepared).value());
  }

  if (!args.save_snapshot.empty()) {
    int32_t score_column = -1;
    for (size_t c = 0; c < table->schema().size(); ++c) {
      if (table->schema().attribute(c).name == rank_by) {
        score_column = static_cast<int32_t>(c);
        break;
      }
    }
    if (score_column < 0) {
      std::fprintf(stderr,
                   "cannot save a snapshot: no ranking column to derive "
                   "scores from\n");
      return 1;
    }
    std::vector<double> scores(table->num_rows());
    for (size_t r = 0; r < scores.size(); ++r) {
      scores[r] = table->ValueAt(static_cast<uint32_t>(r),
                                 static_cast<size_t>(score_column));
    }
    storage::SnapshotContents contents;
    contents.generation = 1;
    contents.ascending = ascending;
    contents.score_column = score_column;
    contents.table = &*table;
    contents.scores = &scores;
    contents.index = &input->index();
    Result<uint64_t> written =
        storage::WriteSnapshot(args.save_snapshot, contents);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "snapshot written to %s (%llu bytes)\n",
                 args.save_snapshot.c_str(),
                 static_cast<unsigned long long>(*written));
  }

  // The typed request: detector by registry name, config and bounds
  // through the shared tool/canonical builders.
  api::AuditRequest request;
  request.detector = args.detector->name;
  request.config = MakeToolConfig(args.k_min, args.k_max, args.tau,
                                  args.threads, table->num_rows());
  Result<api::BoundsSpec> bounds = api::BoundsFromDefaults(
      args.detector->bounds_kind,
      api::BoundsDefaults{args.lower_fraction, args.alpha}, request.config);
  if (!bounds.ok()) {
    std::fprintf(stderr, "%s\n", bounds.status().ToString().c_str());
    return 1;
  }
  request.bounds = std::move(bounds).value();

  if (args.suggest) {
    auto suggestion =
        SuggestParameters(*input, request.config, SuggestOptions{});
    if (!suggestion.ok()) {
      std::fprintf(stderr, "%s\n", suggestion.status().ToString().c_str());
      return 1;
    }
    request.config.size_threshold = suggestion->size_threshold;
    if (std::holds_alternative<GlobalBoundSpec>(request.bounds)) {
      request.bounds = suggestion->global_bounds;
    } else {
      PropBoundSpec prop;
      prop.alpha = suggestion->alpha;
      request.bounds = prop;
    }
    std::fprintf(stderr,
                 "suggested: tau=%d global_level=%.2f alpha=%.2f\n",
                 suggestion->size_threshold, suggestion->global_level,
                 suggestion->alpha);
  }

  // The upper-bound knobs ride on top of the lower-bound expansion
  // (both default to +inf, i.e. disabled) — applied after the suggest
  // override, which calibrates only the lower side, so --upper/--beta
  // survive --suggest.
  if (auto* global = std::get_if<GlobalBoundSpec>(&request.bounds)) {
    global->upper = StepFunction::Constant(args.upper);
  } else {
    std::get<PropBoundSpec>(request.bounds).beta = args.beta;
  }

  if (!args.verify_group.empty()) {
    // Verification mode: check one declared group, skip detection.
    Result<Pattern> group =
        ParseGroupSpec(args.verify_group, input->space());
    if (!group.ok()) {
      std::fprintf(stderr, "%s\n", group.status().ToString().c_str());
      return 1;
    }
    Result<FairnessReport> report =
        std::holds_alternative<GlobalBoundSpec>(request.bounds)
            ? VerifyGlobalFairness(*input, *group,
                                   std::get<GlobalBoundSpec>(request.bounds),
                                   request.config)
            : VerifyPropFairness(*input, *group,
                                 std::get<PropBoundSpec>(request.bounds),
                                 request.config);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("group %s: size=%zu, %s\n",
                group->ToString(input->space()).c_str(),
                report->size_in_d,
                report->fair() ? "FAIR across the whole k range"
                               : "BIASED");
    for (const FairnessViolation& v : report->violations) {
      std::printf("  k=%d count=%zu bounds=[%.2f, %s]%s%s\n", v.k,
                  v.count, v.lower,
                  std::isinf(v.upper) ? "inf"
                                      : FormatDouble(v.upper, 2).c_str(),
                  v.below_lower ? " BELOW" : "",
                  v.above_upper ? " ABOVE" : "");
    }
    return report->fair() ? 0 : 3;
  }

  Result<DetectionResult> detected = api::RunAudit(*input, request);
  if (!detected.ok()) {
    std::fprintf(stderr, "%s\n", detected.status().ToString().c_str());
    return 1;
  }

  // Per-k presentation annotations against the request's bounds kind.
  auto annotate = [&](int k) {
    if (const auto* global = std::get_if<GlobalBoundSpec>(&request.bounds)) {
      return AnnotateGlobal(*detected, *input, *global, k,
                            GroupOrder::kByBiasDesc);
    }
    return AnnotateProp(*detected, *input,
                        std::get<PropBoundSpec>(request.bounds), k,
                        GroupOrder::kByBiasDesc);
  };

  if (args.json) {
    ReportContext context{
        args.snapshot.empty() ? args.csv : args.snapshot, args.measure,
        args.detector->name};
    std::printf("%s\n",
                DetectionResultToJson(*detected, *input, context).c_str());
  } else {
    for (int k = request.config.k_min; k <= request.config.k_max; ++k) {
      if (detected->AtK(k).empty()) continue;
      std::printf("%s",
                  RenderReport(annotate(k), input->space(), k).c_str());
    }
  }

  if (!args.rerank_path.empty()) {
    // Repair mode: detected groups become representation floors. The
    // proportional measure is translated into per-group constant
    // floors at k_max (a conservative approximation of the band).
    std::vector<RepresentationConstraint> constraints;
    for (const Pattern& p : detected->AllDistinct()) {
      if (const auto* global =
              std::get_if<GlobalBoundSpec>(&request.bounds)) {
        constraints.push_back({p, global->lower});
      } else {
        const auto& prop = std::get<PropBoundSpec>(request.bounds);
        const double floor_at_kmax = prop.LowerAt(
            static_cast<int>(input->index().PatternCount(p)),
            request.config.k_max, table->num_rows());
        constraints.push_back(
            {p, StepFunction::Constant(std::ceil(floor_at_kmax))});
      }
    }
    Result<RepairOutcome> repair =
        RepairRanking(*input, constraints, request.config);
    if (!repair.ok()) {
      std::fprintf(stderr, "%s\n", repair.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "repair: moved=%zu kendall_tau=%llu feasible=%s\n",
                 repair->tuples_moved,
                 static_cast<unsigned long long>(
                     repair->kendall_tau_distance),
                 repair->feasible ? "yes" : "no");
    // Persist the table in repaired rank order, with an explicit
    // `repaired_rank` column so the ordering survives re-ranking
    // (audit the file again with `--rank-by repaired_rank
    // --ascending`).
    Result<Table> reordered = [&]() -> Result<Table> {
      Schema schema = table->schema();
      FAIRTOPK_RETURN_IF_ERROR(schema.AddNumeric("repaired_rank"));
      FAIRTOPK_ASSIGN_OR_RETURN(Table out, Table::Create(schema));
      std::vector<Cell> row(table->num_attributes() + 1);
      double rank = 1.0;
      for (uint32_t r : repair->ranking) {
        for (size_t c = 0; c < table->num_attributes(); ++c) {
          row[c] = table->schema().attribute(c).type ==
                           AttributeType::kCategorical
                       ? Cell::Code(table->CodeAt(r, c))
                       : Cell::Value(table->ValueAt(r, c));
        }
        row[table->num_attributes()] = Cell::Value(rank);
        rank += 1.0;
        FAIRTOPK_RETURN_IF_ERROR(out.AppendRow(row));
      }
      return out;
    }();
    if (!reordered.ok()) {
      std::fprintf(stderr, "%s\n",
                   reordered.status().ToString().c_str());
      return 1;
    }
    Status written = WriteCsvFile(*reordered, args.rerank_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "repaired ranking written to %s\n",
                 args.rerank_path.c_str());
  }

  if (args.explain) {
    const int k = request.config.k_max;
    auto groups = annotate(k);
    if (groups.empty()) {
      std::fprintf(stderr, "nothing to explain at k=%d\n", k);
      return 0;
    }
    if (rank_by.empty()) {
      std::fprintf(stderr,
                   "--explain needs a ranking column (this snapshot "
                   "carries explicit scores)\n");
      return 1;
    }
    AttributeRanker ranker({{rank_by, ascending}});
    auto ranking = ranker.Rank(*table);
    if (!ranking.ok()) {
      std::fprintf(stderr, "%s\n", ranking.status().ToString().c_str());
      return 1;
    }
    auto explainer =
        GroupExplainer::Create(*table, *ranking, ExplainerOptions{});
    if (!explainer.ok()) {
      std::fprintf(stderr, "%s\n", explainer.status().ToString().c_str());
      return 1;
    }
    auto explanation =
        explainer->Explain(groups.front().pattern, input->space(), k);
    if (!explanation.ok()) {
      std::fprintf(stderr, "%s\n",
                   explanation.status().ToString().c_str());
      return 1;
    }
    if (args.json) {
      std::printf("%s\n",
                  ExplanationToJson(*explanation, input->space()).c_str());
    } else {
      std::printf("\nExplanation for %s (top attributes by |Shapley|):\n",
                  groups.front().pattern.ToString(input->space()).c_str());
      for (size_t i = 0; i < explanation->effects.size() && i < 6; ++i) {
        std::printf("  %-20s %+.4f\n",
                    explanation->effects[i].attribute.c_str(),
                    explanation->effects[i].mean_shapley);
      }
      std::printf("\n%s",
                  RenderDistribution(
                      explanation->top_attribute_distribution)
                      .c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace fairtopk

int main(int argc, char** argv) {
  fairtopk::Args args;
  bool help = false;
  if (!fairtopk::ParseArgs(argc, argv, args, help)) return 2;
  if (help) {
    fairtopk::PrintUsage(stdout);
    return 0;
  }
  return fairtopk::RunAudit(args);
}
