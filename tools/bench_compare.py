#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and gate on regressions.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--max-ratio X]
                   [--benchmarks name1,name2,...]
                   [--min-speedup SLOW_NAME,FAST_NAME,X]...
                   [--min-speedup-when-kernel KERNELS,SLOW,FAST,X]...
                   [--max-ratio-pair A,B,X]...
                   [--max-ratio-vs BASELINE_NAME,CURRENT_NAME,X]...

Checks, in order:
  * Regression gate: for every benchmark present in BOTH files (or only
    the --benchmarks subset when given), current real_time must be at
    most --max-ratio times the baseline real_time (default 3.0 — wide
    enough to absorb machine-to-machine variance in CI while still
    catching order-of-magnitude regressions). Benchmarks missing from
    the baseline are reported and skipped, so adding a benchmark does
    not require regenerating old baselines.
  * Intra-run speedups: every --min-speedup SLOW,FAST,X asserts
    real_time(SLOW) / real_time(FAST) >= X inside CURRENT alone. This
    is machine-independent (both numbers come from the same run), so it
    can gate properties like "4 serving workers are at least 2x the
    throughput of 1" on any CI hardware.
  * Kernel-conditional speedups: --min-speedup-when-kernel KERNELS,SLOW,
    FAST,X is the same intra-run assertion, but applied only when
    CURRENT's context reports a "fairtopk_kernel" in the |-separated
    KERNELS list (bench_micro's custom main stamps the selected bitset
    kernel there). This lets the SIMD-vs-scalar gate run hard on AVX2/
    AVX-512 machines while a scalar-only CI runner skips it instead of
    failing.
  * Intra-run ratio caps: --max-ratio-pair A,B,X asserts
    real_time(B) <= X * real_time(A) inside CURRENT alone — the
    machine-independent form of a tight overhead bound (e.g. "the
    metrics-enabled path costs at most 2% over the disabled path").
  * Cross-name baseline caps: --max-ratio-vs BASELINE_NAME,
    CURRENT_NAME,X asserts real_time(CURRENT_NAME in CURRENT) <=
    X * real_time(BASELINE_NAME in BASELINE) — for gating a NEW
    benchmark against a DIFFERENT benchmark recorded in an old
    baseline (e.g. the instrumentation-disabled detect path against
    the pre-instrumentation detect bench). Skipped with a notice when
    BASELINE_NAME is absent from the baseline file. Machine-sensitive
    like --max-ratio; pick X accordingly.

Exit code 0 when every gate passes, 1 otherwise.
"""

import argparse
import json
import sys


def load_report(path):
    """Returns ({benchmark name: real_time in ns}, context dict)."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = float(bench["real_time"])
    return times, doc.get("context", {})


def check_min_speedup(current, slow, fast, minimum, failures):
    if slow not in current or fast not in current:
        failures.append(
            f"--min-speedup names missing from current run: {slow},{fast}")
        return
    speedup = current[slow] / current[fast]
    ok = speedup >= minimum
    print(f"speedup {slow} / {fast} = {speedup:.2f}x "
          f"(minimum {minimum:.2f}x){'' if ok else '  << TOO SLOW'}")
    if not ok:
        failures.append(
            f"{fast} is only {speedup:.2f}x faster than {slow} "
            f"(minimum {minimum:.2f}x)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="fail when current/baseline exceeds this")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated subset to compare "
                             "(default: every benchmark in CURRENT)")
    parser.add_argument("--min-speedup", action="append", default=[],
                        metavar="SLOW,FAST,X",
                        help="assert real_time(SLOW)/real_time(FAST) >= X "
                             "within CURRENT (repeatable)")
    parser.add_argument("--min-speedup-when-kernel", action="append",
                        default=[], metavar="KERNELS,SLOW,FAST,X",
                        help="like --min-speedup, but only enforced when "
                             "CURRENT's context fairtopk_kernel is in the "
                             "|-separated KERNELS list (repeatable)")
    parser.add_argument("--max-ratio-pair", action="append", default=[],
                        metavar="A,B,X",
                        help="assert real_time(B) <= X * real_time(A) "
                             "within CURRENT (repeatable)")
    parser.add_argument("--max-ratio-vs", action="append", default=[],
                        metavar="BASE_NAME,CURR_NAME,X",
                        help="assert real_time(CURR_NAME in CURRENT) <= "
                             "X * real_time(BASE_NAME in BASELINE); skipped "
                             "when BASE_NAME is missing from the baseline "
                             "(repeatable)")
    args = parser.parse_args()

    baseline, _ = load_report(args.baseline)
    current, context = load_report(args.current)
    names = ([n for n in args.benchmarks.split(",") if n]
             if args.benchmarks else sorted(current))

    failures = []
    print(f"{'benchmark':55} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name in names:
        if name not in current:
            failures.append(f"benchmark '{name}' missing from {args.current}")
            continue
        if name not in baseline:
            print(f"{name:55} {'-':>12} {current[name]:>10.0f}ns "
                  f"{'new':>7}")
            continue
        ratio = current[name] / baseline[name]
        flag = "" if ratio <= args.max_ratio else "  << REGRESSION"
        print(f"{name:55} {baseline[name]:>10.0f}ns {current[name]:>10.0f}ns "
              f"{ratio:>6.2f}x{flag}")
        if ratio > args.max_ratio:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"(limit {args.max_ratio:.2f}x)")

    for spec in args.min_speedup:
        parts = spec.split(",")
        if len(parts) != 3:
            failures.append(f"bad --min-speedup spec: {spec}")
            continue
        check_min_speedup(current, parts[0], parts[1], float(parts[2]),
                          failures)

    for spec in args.max_ratio_pair:
        parts = spec.split(",")
        if len(parts) != 3:
            failures.append(f"bad --max-ratio-pair spec: {spec}")
            continue
        a, b, limit = parts[0], parts[1], float(parts[2])
        if a not in current or b not in current:
            failures.append(
                f"--max-ratio-pair names missing from current run: {a},{b}")
            continue
        ratio = current[b] / current[a]
        ok = ratio <= limit
        print(f"ratio {b} / {a} = {ratio:.3f}x "
              f"(limit {limit:.3f}x){'' if ok else '  << TOO SLOW'}")
        if not ok:
            failures.append(
                f"{b} is {ratio:.3f}x of {a} (limit {limit:.3f}x)")

    for spec in args.max_ratio_vs:
        parts = spec.split(",")
        if len(parts) != 3:
            failures.append(f"bad --max-ratio-vs spec: {spec}")
            continue
        base_name, curr_name, limit = parts[0], parts[1], float(parts[2])
        if curr_name not in current:
            failures.append(
                f"--max-ratio-vs benchmark '{curr_name}' missing from "
                f"{args.current}")
            continue
        if base_name not in baseline:
            print(f"skipping cross-name cap {curr_name} vs {base_name} "
                  f"(not in baseline)")
            continue
        ratio = current[curr_name] / baseline[base_name]
        ok = ratio <= limit
        print(f"ratio {curr_name} / baseline {base_name} = {ratio:.3f}x "
              f"(limit {limit:.3f}x){'' if ok else '  << REGRESSION'}")
        if not ok:
            failures.append(
                f"{curr_name} is {ratio:.3f}x of baseline {base_name} "
                f"(limit {limit:.3f}x)")

    kernel = context.get("fairtopk_kernel", "")
    for spec in args.min_speedup_when_kernel:
        parts = spec.split(",")
        if len(parts) != 4:
            failures.append(f"bad --min-speedup-when-kernel spec: {spec}")
            continue
        kernels = parts[0].split("|")
        if kernel not in kernels:
            print(f"skipping kernel-gated speedup {parts[1]} / {parts[2]} "
                  f"(kernel '{kernel}' not in {parts[0]})")
            continue
        check_min_speedup(current, parts[1], parts[2], float(parts[3]),
                          failures)

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall perf gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
